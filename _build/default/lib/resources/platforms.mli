(** Capacity tables for the two evaluation platforms of section 6.2:
    Intel HARP (Arria 10 GX 1150) and the Xilinx KC705 (Kintex-7 325T).
    Capacities are the public device totals, used to normalize the
    overheads of Figures 2 and 3. *)

type t = {
  name : string;
  bram_bits : int;
  registers : int;
  logic_elements : int;  (** ALMs / LUTs *)
  fabric_speed : int;
      (** speed constant of the frequency model:
          achievable MHz = fabric_speed / logic levels *)
}

val harp : t
val kc705 : t

type kind = Harp | Xilinx | Generic

val of_kind : kind -> t
(** Generic designs synthesize to the KC705, as in the paper's setup. *)
