lib/resources/platforms.ml:
