lib/resources/platforms.mli:
