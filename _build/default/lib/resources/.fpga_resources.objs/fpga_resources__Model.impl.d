lib/resources/model.ml: Fpga_analysis Fpga_hdl List Option Platforms
