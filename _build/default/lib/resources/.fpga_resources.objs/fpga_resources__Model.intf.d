lib/resources/model.mli: Fpga_hdl Platforms
