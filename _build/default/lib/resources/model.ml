(* Analytic synthesis model: estimates block RAM, register, and logic
   usage of a module, and the clock frequency it can close, standing in
   for Quartus/Vivado in the overhead experiments (section 6.4).

   The model is deliberately simple but captures the trends the paper
   reports: memories (including recording buffers) consume BRAM bits
   linearly in their depth; monitor shadow state adds registers; the
   inserted comparison/mux logic adds LUTs independent of buffer size;
   and deep combinational conditions lower the achievable frequency. *)

module Ast = Fpga_hdl.Ast
module Width = Fpga_analysis.Width

type usage = { bram_bits : int; registers : int; logic : int }

let zero_usage = { bram_bits = 0; registers = 0; logic = 0 }

let add_usage a b =
  {
    bram_bits = a.bram_bits + b.bram_bits;
    registers = a.registers + b.registers;
    logic = a.logic + b.logic;
  }

let sub_usage a b =
  {
    bram_bits = a.bram_bits - b.bram_bits;
    registers = a.registers - b.registers;
    logic = a.logic - b.logic;
  }

(* ------------------------------------------------------------------ *)
(* LUT cost of expressions                                             *)
(* ------------------------------------------------------------------ *)

let rec expr_cost (m : Ast.module_def) (e : Ast.expr) : int =
  let w x = try Width.of_expr m x with Width.Unknown_width _ -> 8 in
  match e with
  | Ast.Const _ | Ast.Ident _ | Ast.Range _ -> 0
  | Ast.Index (n, i) -> (
      expr_cost m i
      +
      (* variable bit/word select costs a mux tree *)
      match i with Ast.Const _ -> 0 | _ -> max 1 (w (Ast.Ident n) / 2))
  | Ast.Unop ((Ast.Bnot | Ast.Neg), a) -> expr_cost m a + max 1 (w a / 4)
  | Ast.Unop ((Ast.Lnot | Ast.Rand | Ast.Ror | Ast.Rxor), a) ->
      expr_cost m a + max 1 (w a / 6)
  | Ast.Binop ((Ast.Add | Ast.Sub), a, b) ->
      expr_cost m a + expr_cost m b + max (w a) (w b)
  | Ast.Binop (Ast.Mul, a, b) ->
      expr_cost m a + expr_cost m b + (2 * max (w a) (w b))
  | Ast.Binop ((Ast.Div | Ast.Mod), a, b) ->
      expr_cost m a + expr_cost m b + (4 * max (w a) (w b))
  | Ast.Binop ((Ast.Band | Ast.Bor | Ast.Bxor), a, b) ->
      expr_cost m a + expr_cost m b + max 1 (max (w a) (w b) / 2)
  | Ast.Binop ((Ast.Land | Ast.Lor), a, b) -> expr_cost m a + expr_cost m b + 1
  | Ast.Binop ((Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), a, b) ->
      expr_cost m a + expr_cost m b + max 1 (max (w a) (w b) / 2)
  | Ast.Binop ((Ast.Shl | Ast.Shr | Ast.Ashr), a, b) -> (
      expr_cost m a
      + expr_cost m b
      + match b with Ast.Const _ -> 0 | _ -> w a (* barrel shifter *))
  | Ast.Cond (c, a, b) ->
      expr_cost m c + expr_cost m a + expr_cost m b + max (w a) (w b)
  | Ast.Concat es -> List.fold_left (fun acc x -> acc + expr_cost m x) 0 es
  | Ast.Repeat (_, a) -> expr_cost m a

let rec stmt_cost (m : Ast.module_def) (s : Ast.stmt) : int =
  match s with
  | Ast.Blocking (l, e) | Ast.Nonblocking (l, e) ->
      let lv_cost =
        match l with Ast.Lindex (_, i) -> expr_cost m i + 4 | _ -> 0
      in
      expr_cost m e + lv_cost
  | Ast.If (c, t, f) ->
      (* condition logic plus an enable/mux per assigned target *)
      expr_cost m c + 1
      + List.fold_left (fun acc x -> acc + stmt_cost m x) 0 t
      + List.fold_left (fun acc x -> acc + stmt_cost m x) 0 f
  | Ast.Case (e, items, default) ->
      expr_cost m e
      + List.fold_left
          (fun acc (it : Ast.case_item) ->
            acc + 1
            + List.fold_left (fun a x -> a + stmt_cost m x) 0 it.Ast.body)
          0 items
      + (match default with
        | None -> 0
        | Some body -> List.fold_left (fun a x -> a + stmt_cost m x) 0 body)
  | Ast.Display _ | Ast.Finish -> 0

(* ------------------------------------------------------------------ *)
(* Module usage                                                        *)
(* ------------------------------------------------------------------ *)

let ip_usage (i : Ast.instance) : usage =
  let param name default =
    Option.value (List.assoc_opt name i.Ast.params) ~default
  in
  match i.Ast.target with
  | "scfifo" | "dcfifo" ->
      let bits = param "lpm_width" 8 * param "lpm_numwords" 16 in
      { bram_bits = bits; registers = 2 * Width.clog2 (param "lpm_numwords" 16); logic = 24 }
  | "altsyncram" ->
      let bits = param "width_a" 8 * param "numwords_a" 16 in
      { bram_bits = bits; registers = param "width_a" 8; logic = 8 }
  | _ -> zero_usage

let of_module (m : Ast.module_def) : usage =
  let decls =
    List.fold_left
      (fun acc (d : Ast.decl) ->
        match (d.Ast.kind, d.Ast.depth) with
        | _, Some depth ->
            add_usage acc { zero_usage with bram_bits = d.Ast.width * depth }
        | Ast.Reg, None ->
            add_usage acc { zero_usage with registers = d.Ast.width }
        | Ast.Wire, None -> acc)
      zero_usage m.Ast.decls
  in
  let assigns =
    List.fold_left
      (fun acc (_, e) -> acc + expr_cost m e)
      0 m.Ast.assigns
  in
  let always =
    List.fold_left
      (fun acc (a : Ast.always) ->
        acc + List.fold_left (fun x s -> x + stmt_cost m s) 0 a.Ast.stmts)
      0 m.Ast.always_blocks
  in
  let ips = List.fold_left (fun acc i -> add_usage acc (ip_usage i)) zero_usage m.Ast.instances in
  add_usage (add_usage decls ips) { zero_usage with logic = assigns + always }

(* Overhead of an instrumented design relative to its baseline. *)
let overhead ~(baseline : Ast.module_def) ~(instrumented : Ast.module_def) :
    usage =
  sub_usage (of_module instrumented) (of_module baseline)

(* ------------------------------------------------------------------ *)
(* Frequency model                                                     *)
(* ------------------------------------------------------------------ *)

(* Logic levels of an expression: depth of the operator tree, weighting
   carry-chain arithmetic and multipliers more heavily. Chains of the
   same associative bitwise/logical operator are balanced into trees,
   as synthesizers do, so an n-way OR costs ceil(log2 n) levels. *)
let is_balanceable = function
  | Ast.Band | Ast.Bor | Ast.Bxor | Ast.Land | Ast.Lor -> true
  | _ -> false

let rec expr_levels (e : Ast.expr) : int =
  match e with
  | Ast.Const _ | Ast.Ident _ | Ast.Range _ -> 0
  | Ast.Index (_, i) -> ( match i with Ast.Const _ -> 0 | _ -> 1 + expr_levels i)
  | Ast.Unop (_, a) -> 1 + expr_levels a
  | Ast.Binop ((Ast.Add | Ast.Sub | Ast.Eq | Ast.Neq | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), a, b)
    ->
      2 + max (expr_levels a) (expr_levels b)
  | Ast.Binop (Ast.Mul, a, b) -> 3 + max (expr_levels a) (expr_levels b)
  | Ast.Binop ((Ast.Div | Ast.Mod), a, b) ->
      6 + max (expr_levels a) (expr_levels b)
  | Ast.Binop (op, _, _) when is_balanceable op ->
      let rec flatten e acc =
        match e with
        | Ast.Binop (op', a, b) when op' = op -> flatten a (flatten b acc)
        | leaf -> leaf :: acc
      in
      let leaves = flatten e [] in
      let depth_of_tree =
        let n = List.length leaves in
        let rec clog2 acc v = if v <= 1 then acc else clog2 (acc + 1) ((v + 1) / 2) in
        clog2 0 n
      in
      depth_of_tree
      + List.fold_left (fun acc l -> max acc (expr_levels l)) 0 leaves
  | Ast.Binop (_, a, b) -> 1 + max (expr_levels a) (expr_levels b)
  | Ast.Cond (c, a, b) ->
      1 + max (expr_levels c) (max (expr_levels a) (expr_levels b))
  | Ast.Concat es -> List.fold_left (fun acc x -> max acc (expr_levels x)) 0 es
  | Ast.Repeat (_, a) -> expr_levels a

let rec stmt_levels (depth : int) (s : Ast.stmt) : int =
  match s with
  | Ast.Blocking (l, e) | Ast.Nonblocking (l, e) ->
      let lv = match l with Ast.Lindex (_, i) -> 1 + expr_levels i | _ -> 0 in
      depth + max lv (expr_levels e)
  | Ast.If (c, t, f) ->
      let d = depth + 1 + expr_levels c in
      List.fold_left
        (fun acc x -> max acc (stmt_levels d x))
        d (t @ f)
  | Ast.Case (e, items, default) ->
      let d = depth + 1 + expr_levels e in
      let body_max =
        List.fold_left
          (fun acc (it : Ast.case_item) ->
            List.fold_left (fun a x -> max a (stmt_levels d x)) acc it.Ast.body)
          d items
      in
      (match default with
      | None -> body_max
      | Some body ->
          List.fold_left (fun a x -> max a (stmt_levels d x)) body_max body)
  | Ast.Display _ | Ast.Finish -> depth

let critical_levels (m : Ast.module_def) : int =
  let from_assigns =
    List.fold_left (fun acc (_, e) -> max acc (expr_levels e)) 0 m.Ast.assigns
  in
  let from_always =
    List.fold_left
      (fun acc (a : Ast.always) ->
        List.fold_left (fun x s -> max x (stmt_levels 0 s)) acc a.Ast.stmts)
      0 m.Ast.always_blocks
  in
  max 1 (max from_assigns from_always)

(* The frequency grid designs in the study target. *)
let frequency_grid = [ 400; 200; 100; 50 ]

type timing = {
  target_mhz : int;
  fmax_mhz : int;
  achieved_mhz : int;  (* highest grid frequency <= fmax *)
  meets_target : bool;
}

(* [instrumented] adds one level of tap load: recording logic fans out
   from the design's nets, lengthening its critical path slightly. *)
let timing ?(instrumented = false) (platform : Platforms.t)
    (m : Ast.module_def) ~target_mhz : timing =
  let levels = critical_levels m + if instrumented then 1 else 0 in
  let fmax = platform.Platforms.fabric_speed / levels in
  let achieved =
    match List.find_opt (fun f -> f <= fmax) frequency_grid with
    | Some f -> f
    | None -> List.fold_left min max_int frequency_grid
  in
  {
    target_mhz;
    fmax_mhz = fmax;
    achieved_mhz = min achieved target_mhz;
    meets_target = fmax >= target_mhz;
  }

(* Percent of platform capacity, as plotted in Figure 3. *)
let normalize (platform : Platforms.t) (u : usage) :
    (string * float) list =
  [
    ("bram", 100.0 *. float_of_int u.bram_bits /. float_of_int platform.Platforms.bram_bits);
    ("registers", 100.0 *. float_of_int u.registers /. float_of_int platform.Platforms.registers);
    ("logic", 100.0 *. float_of_int u.logic /. float_of_int platform.Platforms.logic_elements);
  ]
