(** Analytic synthesis model: block RAM, register, and logic usage of a
    module, and the clock frequency it can close — the Quartus/Vivado
    substitute behind the Figure 2 / Figure 3 / section 6.4 overhead
    experiments.

    The model is simple but captures the paper's trends: memories
    (including SignalCat's recording buffers) consume BRAM bits
    linearly in their depth; monitor shadow state adds registers; the
    inserted comparison/mux logic adds LUTs independent of buffer
    size; deep combinational paths lower the achievable frequency. *)

type usage = { bram_bits : int; registers : int; logic : int }

val zero_usage : usage
val add_usage : usage -> usage -> usage
val sub_usage : usage -> usage -> usage

val expr_cost : Fpga_hdl.Ast.module_def -> Fpga_hdl.Ast.expr -> int
(** LUT estimate of an expression. *)

val stmt_cost : Fpga_hdl.Ast.module_def -> Fpga_hdl.Ast.stmt -> int

val of_module : Fpga_hdl.Ast.module_def -> usage
(** Total usage: registers = sum of reg widths, BRAM = memory and IP
    storage bits, logic = operator cost estimates. *)

val overhead :
  baseline:Fpga_hdl.Ast.module_def ->
  instrumented:Fpga_hdl.Ast.module_def ->
  usage
(** Usage delta of an instrumented design over its baseline. *)

val expr_levels : Fpga_hdl.Ast.expr -> int
(** Logic levels of an expression: operator-tree depth with heavier
    weights for carry-chain arithmetic and multipliers, and balanced
    trees for chains of the same associative bitwise/logical operator
    (an n-way OR costs ceil(log2 n)). *)

val stmt_levels : int -> Fpga_hdl.Ast.stmt -> int
val critical_levels : Fpga_hdl.Ast.module_def -> int

val frequency_grid : int list
(** The target frequencies the study's designs use: 400/200/100/50. *)

type timing = {
  target_mhz : int;
  fmax_mhz : int;
  achieved_mhz : int;  (** highest grid frequency <= fmax (and target) *)
  meets_target : bool;
}

val timing :
  ?instrumented:bool ->
  Platforms.t ->
  Fpga_hdl.Ast.module_def ->
  target_mhz:int ->
  timing
(** [fmax = fabric_speed / levels]; [instrumented] adds one level of
    tap load, since recording logic fans out from the design's nets. *)

val normalize : Platforms.t -> usage -> (string * float) list
(** Percent of platform capacity (["bram"], ["registers"], ["logic"]),
    as plotted in Figure 3. *)
