(* Capacity tables for the two evaluation platforms (section 6.2).

   Intel HARP carries an Arria 10 GX 1150; the Xilinx board is a KC705
   with a Kintex-7 325T. Capacities are the public device totals and are
   used to normalize overheads, as in Figures 2 and 3. *)

type t = {
  name : string;
  bram_bits : int;
  registers : int;
  logic_elements : int;  (* ALMs / LUTs *)
  (* fabric speed constant: achievable MHz = fabric_speed / logic levels *)
  fabric_speed : int;
}

let harp =
  {
    name = "Intel HARP (Arria 10 GX 1150)";
    bram_bits = 55_562_240;  (* 2713 M20K blocks *)
    registers = 1_708_800;
    logic_elements = 427_200;
    fabric_speed = 3200;
  }

let kc705 =
  {
    name = "Xilinx KC705 (Kintex-7 325T)";
    bram_bits = 16_404_480;  (* 445 BRAM36 blocks *)
    registers = 407_600;
    logic_elements = 203_800;
    fabric_speed = 2800;
  }

type kind = Harp | Xilinx | Generic

(* Generic designs are synthesized to the KC705 in the paper's setup. *)
let of_kind = function Harp -> harp | Xilinx | Generic -> kc705
