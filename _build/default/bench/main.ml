(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation from the implementation, then runs Bechamel
   micro-benchmarks of the substrate. Sections:

     Table 1    - bug study classification
     Table 2    - testbed of reproducible bugs, symptoms, helpful tools
     Figure 2   - SignalCat + monitor resource overhead vs. buffer size
     Figure 3   - LossCheck overhead normalized to platform capacity
     6.3        - tool effectiveness (localization, generated code, FSM
                  detection accuracy, false-positive filtering)
     6.4        - frequency closure before/after instrumentation
     micro      - Bechamel benchmarks of parser/simulator/analyses *)

module Report = Fpga_report.Report
module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry
module Recipe = Fpga_testbed.Recipe

let header = Report.header

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks                                           *)
(* ------------------------------------------------------------------ *)

let microbench () =
  header "Micro-benchmarks (Bechamel)";
  let open Bechamel in
  let d2 = Option.get (Registry.find "D2") in
  let d2_design = Bug.design_of d2 ~buggy:true in
  let parse_test =
    Test.make ~name:"parse grayscale"
      (Staged.stage (fun () ->
           ignore (Fpga_hdl.Parser.parse_design d2.Bug.buggy_src)))
  in
  let elaborate_test =
    Test.make ~name:"elaborate grayscale"
      (Staged.stage (fun () ->
           ignore (Fpga_sim.Elaborate.elaborate d2_design ~top:"grayscale")))
  in
  let simulate_test =
    Test.make ~name:"simulate grayscale 100 cycles"
      (Staged.stage (fun () ->
           let sim = Fpga_sim.Testbench.of_design ~top:"grayscale" d2_design in
           for i = 0 to 99 do
             List.iter
               (fun (n, v) -> Fpga_sim.Simulator.set_input sim n v)
               (d2.Bug.stimulus i);
             Fpga_sim.Simulator.step sim
           done))
  in
  let m = Option.get (Fpga_hdl.Ast.find_module d2_design "grayscale") in
  let losscheck_static_test =
    Test.make ~name:"losscheck static analysis"
      (Staged.stage (fun () ->
           let spec = Option.get d2.Bug.loss_spec in
           ignore (Fpga_debug.Losscheck.analyze spec m)))
  in
  let fsm_detect_test =
    Test.make ~name:"fsm detection"
      (Staged.stage (fun () -> ignore (Fpga_analysis.Fsm_detect.detect m)))
  in
  let instrument_test =
    Test.make ~name:"full recipe instrumentation"
      (Staged.stage (fun () -> ignore (Recipe.apply ~buffer_depth:1024 d2)))
  in
  (* scaling: simulated cycles over generated pipelines of growing depth *)
  let pipeline_src n =
    let buf = Buffer.create 1024 in
    Buffer.add_string buf
      "module pipe (input clk, input [7:0] d, output [7:0] q);\n";
    for i = 1 to n do
      Buffer.add_string buf (Printf.sprintf "  reg [7:0] s%d;\n" i)
    done;
    Buffer.add_string buf (Printf.sprintf "  assign q = s%d;\n" n);
    Buffer.add_string buf "  always @(posedge clk) begin\n    s1 <= d;\n";
    for i = 2 to n do
      Buffer.add_string buf (Printf.sprintf "    s%d <= s%d + 8'd1;\n" i (i - 1))
    done;
    Buffer.add_string buf "  end\nendmodule\n";
    Buffer.contents buf
  in
  let scaling_tests =
    List.map
      (fun n ->
        let design = Fpga_hdl.Parser.parse_design (pipeline_src n) in
        Test.make ~name:(Printf.sprintf "simulate %d-stage pipeline, 50 cycles" n)
          (Staged.stage (fun () ->
               let sim = Fpga_sim.Testbench.of_design ~top:"pipe" design in
               for i = 0 to 49 do
                 Fpga_sim.Simulator.set_input_int sim "d" (i land 0xFF);
                 Fpga_sim.Simulator.step sim
               done)))
      [ 10; 50; 100 ]
  in
  let tests =
    [
      parse_test; elaborate_test; simulate_test; losscheck_static_test;
      fsm_detect_test; instrument_test;
    ]
    @ scaling_tests
  in
  let clock = Toolkit.Instance.monotonic_clock in
  let benchmark test =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
    Benchmark.all cfg [ clock ] test
  in
  List.iter
    (fun test ->
      let results = benchmark test in
      Hashtbl.iter
        (fun name raw ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              clock raw
          in
          match Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-36s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-36s (no estimate)\n" name)
        results)
    tests

let () =
  Report.table1 ();
  Report.table2 ();
  Report.extended_testbed ();
  Report.figure2 ();
  Report.figure3 ();
  Report.effectiveness ();
  Report.frequency ();
  Report.ablations ();
  (match Sys.getenv_opt "SKIP_MICROBENCH" with
  | Some _ -> print_endline "\n(micro-benchmarks skipped)"
  | None -> microbench ());
  print_endline "\nDone. See EXPERIMENTS.md for the paper-vs-measured record."
