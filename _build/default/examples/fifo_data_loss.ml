(* LossCheck on a FIFO output stage built around the scfifo IP (the
   testbed's C4): under downstream backpressure the skid register is
   overwritten before its word is consumed. This example shows the
   tool's raw pieces: the propagation-relation table, the generated
   shadow logic, and the final localization.

   Run with:  dune exec examples/fifo_data_loss.exe *)

module Ast = Fpga_hdl.Ast
module Pp = Fpga_hdl.Pp_verilog
module Bug = Fpga_testbed.Bug
module Losscheck = Fpga_debug.Losscheck

let bug = Fpga_testbed.App_axis_fifo.bug

let () =
  let design = Bug.design_of bug ~buggy:true in
  let m = Option.get (Ast.find_module design bug.Bug.top) in
  let spec = Option.get bug.Bug.loss_spec in

  print_endline "== The design under suspicion ==";
  print_string (Pp.module_to_string m);

  print_endline "\n== Static analysis: propagation relations ==";
  let plan = Losscheck.analyze spec m in
  List.iter
    (fun (r : Losscheck.relation) ->
      Printf.printf "  %s ~>[%s] %s\n" r.Losscheck.src
        (Pp.expr_str r.Losscheck.cond)
        r.Losscheck.dst)
    plan.Losscheck.relations;
  Printf.printf "registers on the source->sink sequence: %s\n"
    (String.concat ", "
       (plan.Losscheck.scalar_checks @ plan.Losscheck.memory_checks));

  print_endline "\n== Generated shadow logic (A/V/P/N of section 4.5.2) ==";
  let instrumented = Losscheck.instrument plan m in
  let added =
    Fpga_debug.Instrument.added_loc ~before:m ~after:instrumented
  in
  Printf.printf "%d lines of checking logic inserted\n" added;

  print_endline "\n== Dynamic analysis ==";
  let result =
    Losscheck.localize ~ground_truth:bug.Bug.ground_truth
      ~max_cycles:bug.Bug.max_cycles ~top:bug.Bug.top ~spec
      ~stimulus:bug.Bug.stimulus design
  in
  List.iter
    (fun (cycle, reg) ->
      Printf.printf "  cycle %3d: potential data loss at %s\n" cycle reg)
    result.Losscheck.raw_alarms;
  Printf.printf "localized loss register(s): %s\n"
    (String.concat ", " result.Losscheck.reported);

  print_endline "\n== Cross-check with the fix ==";
  let fixed = Bug.run bug ~buggy:false and buggy = Bug.run bug ~buggy:true in
  Printf.printf
    "buggy design delivered %d words, fixed design delivered %d\n"
    (List.length buggy.Bug.rows)
    (List.length fixed.Bug.rows)
