(* The prevention-and-inspection side of the toolbox on one bug:

   1. the structural linter flags the overflow-prone indexing of D1's
      codeword buffer before any simulation runs,
   2. waveform differencing against the fixed design pinpoints the
      first cycle at which the buggy run departs,
   3. a checkpoint taken just before the divergence replays the
      interesting window without re-running the prefix.

   Run with:  dune exec examples/prevention_toolkit.exe *)

module Ast = Fpga_hdl.Ast
module Bug = Fpga_testbed.Bug
module Lint = Fpga_analysis.Lint
module Waveform = Fpga_sim.Waveform
module Simulator = Fpga_sim.Simulator

let bug = Fpga_testbed.App_rsd.bug

let () =
  print_endline "== 1. Lint the design before running anything ==";
  let design = Bug.design_of bug ~buggy:true in
  List.iter
    (fun (mod_name, findings) ->
      List.iter
        (fun f ->
          Printf.printf "%s: %s\n" mod_name (Lint.finding_to_string f))
        findings)
    (Lint.check_design ~only:[ "overflow-prone"; "truncation" ] design);
  print_endline
    "-> the 5-bit padded index into the 12-entry codeword buffer is \
     exactly where D1's overflow lives\n";

  print_endline "== 2. Waveform diff against the fixed design ==";
  let signals = [ "out_valid"; "out_data"; "host_addr"; "state_out" ] in
  let cap ~buggy =
    Waveform.capture ~max_cycles:bug.Bug.max_cycles ~top:bug.Bug.top ~signals
      (Bug.design_of bug ~buggy) bug.Bug.stimulus
  in
  let buggy_wave = cap ~buggy:true and fixed_wave = cap ~buggy:false in
  (match Waveform.first_divergence buggy_wave fixed_wave with
  | Some d ->
      Printf.printf "first divergence: %s\n" (Waveform.divergence_to_string d);
      print_endline "buggy run around the divergence:";
      print_string
        (Waveform.render ~from_cycle:(max 0 (d.Waveform.cycle - 2)) ~cycles:12
           buggy_wave)
  | None -> print_endline "no divergence (unexpected)");
  print_newline ();

  print_endline "== 3. Checkpoint and replay the interesting window ==";
  let sim = Fpga_sim.Testbench.of_design ~top:bug.Bug.top design in
  for i = 0 to 6 do
    List.iter (fun (n, v) -> Simulator.set_input sim n v) (bug.Bug.stimulus i);
    Simulator.step sim
  done;
  let cp = Simulator.checkpoint sim in
  Printf.printf "checkpoint taken at cycle %d\n" (Simulator.cycle sim);
  for i = 7 to 20 do
    List.iter (fun (n, v) -> Simulator.set_input sim n v) (bug.Bug.stimulus i);
    Simulator.step sim
  done;
  Printf.printf "ran ahead to cycle %d (host_addr = %d)\n" (Simulator.cycle sim)
    (Simulator.read_int sim "host_addr");
  Simulator.restore sim cp;
  Printf.printf "restored to cycle %d; replaying with extra visibility...\n"
    (Simulator.cycle sim);
  for i = 7 to 20 do
    List.iter (fun (n, v) -> Simulator.set_input sim n v) (bug.Bug.stimulus i);
    Simulator.step sim;
    let addr = Simulator.read_int sim "host_addr" in
    if addr >= 12 then
      Printf.printf "  cycle %d: host_addr = %d leaves the 12-word region!\n"
        (Simulator.cycle sim) addr
  done
