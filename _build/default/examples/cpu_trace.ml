(* Tracing a program on the reduced CPU core with SignalCat trigger
   windows: full instruction traces are too big for on-chip buffers, so
   the recorder arms only around the region of interest - exactly how
   SignalTap/ILA sessions are set up in practice, here expressed as
   start/stop expressions over design state.

   The buggy core (E7) loses the PC carry on branches taken above
   address 128; the windowed trace shows execution veering into low
   memory right after the branch.

   Run with:  dune exec examples/cpu_trace.exe *)

module Ast = Fpga_hdl.Ast
module Bug = Fpga_testbed.Bug
module Signalcat = Fpga_debug.Signalcat

let bug = Fpga_testbed.App_cpu.e7

(* Add a retirement trace to the core: one $display per executed
   instruction. *)
let with_trace (m : Ast.module_def) : Ast.module_def =
  let trace_block =
    {
      Ast.sens = Ast.Posedge "clk";
      stmts =
        [
          Ast.If
            ( Ast.and_expr (Ast.Ident "running") (Ast.not_expr (Ast.Ident "halted")),
              [
                Ast.Display
                  ("[TRACE] pc=%d op=%d", [ Ast.Ident "pc"; Ast.Ident "opcode" ]);
              ],
              [] );
        ];
    }
  in
  { m with Ast.always_blocks = m.Ast.always_blocks @ [ trace_block ] }

let () =
  let design = Bug.design_of bug ~buggy:true in
  let m = Option.get (Ast.find_module design bug.Bug.top) in
  let traced = with_trace m in
  let design' =
    { Ast.modules = List.map (fun x -> if x == m then traced else x) design.Ast.modules }
  in

  print_endline "== Full simulation trace (too big for an on-chip buffer) ==";
  let full =
    Signalcat.run_and_log ~max_cycles:bug.Bug.max_cycles
      ~mode:Signalcat.Simulation ~top:bug.Bug.top design' bug.Bug.stimulus
  in
  Printf.printf "%d retirement events in total\n" (List.length full);

  print_endline
    "\n== Windowed on-FPGA trace: arm when the PC crosses 128, keep 4 \
     post-trigger entries after it falls back below 64 ==";
  let trigger =
    {
      Signalcat.start =
        Some (Ast.Binop (Ast.Ge, Ast.Ident "pc", Fpga_hdl.Builder.const ~width:8 128));
      stop =
        Some (Ast.Binop (Ast.Lt, Ast.Ident "pc", Fpga_hdl.Builder.const ~width:8 64));
      post = 4;
    }
  in
  let windowed =
    Signalcat.run_and_log ~buffer_depth:64 ~trigger ~max_cycles:bug.Bug.max_cycles
      ~mode:Signalcat.On_fpga ~top:bug.Bug.top design' bug.Bug.stimulus
  in
  List.iter (fun (c, t) -> Printf.printf "  [cycle %3d] %s\n" c t) windowed;
  Printf.printf "%d events captured with a 64-entry buffer\n"
    (List.length windowed);
  print_endline
    "-> after the branch at pc=130 the trace continues at pc=6: the \
     branch target lost the PC's top bit (bug E7)";

  print_endline "\n== The fixed core, same window ==";
  let fixed_design = Bug.design_of bug ~buggy:false in
  let fm = Option.get (Ast.find_module fixed_design bug.Bug.top) in
  let fixed_traced = with_trace fm in
  let fixed' =
    { Ast.modules =
        List.map (fun x -> if x == fm then fixed_traced else x) fixed_design.Ast.modules }
  in
  let fixed_window =
    Signalcat.run_and_log ~buffer_depth:64 ~trigger ~max_cycles:bug.Bug.max_cycles
      ~mode:Signalcat.On_fpga ~top:bug.Bug.top fixed' bug.Bug.stimulus
  in
  List.iter (fun (c, t) -> Printf.printf "  [cycle %3d] %s\n" c t) fixed_window;
  print_endline "-> the fixed core stays above 128 until it halts"
