(* A larger, hierarchical design debugged with the full toolbox: a
   two-port packet router built from a header parser, two scfifo
   queues, and an arbiter - the kind of networking design the study's
   GitHub corpus is full of.

   We inject a fresh producer-consumer bug (the arbiter acknowledges
   both queues in the same cycle when both are ready, but can forward
   only one), then walk the tools over it: statistics catch the loss,
   LossCheck names the register, and the fix (one grant at a time)
   checks clean.

   Run with:  dune exec examples/packet_router.exe *)

module Ast = Fpga_hdl.Ast
module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator
module Testbench = Fpga_sim.Testbench

let source ~buggy =
  let pop_ok = if buggy then "1'b1" else "!fwd_vld" in
  Printf.sprintf
    {|
module hdr_parse (
  input [15:0] beat,
  output port_sel,
  output [7:0] payload
);
  // bit 8 of the header selects the egress port
  assign port_sel = beat[8];
  assign payload = beat[7:0];
endmodule

module router (
  input clk,
  input reset,
  input in_valid,
  input [15:0] in_beat,
  output reg out_valid,
  output reg [7:0] out_data,
  output reg out_port
);
  wire sel;
  wire [7:0] payload;
  wire [7:0] q0_data, q1_data;
  wire q0_empty, q1_empty;
  wire q0_pop, q1_pop;
  wire push0, push1;
  wire pop_ok;
  reg [7:0] fwd_data;
  reg fwd_port;
  reg fwd_vld;
  reg busy;

  hdr_parse u_hdr (.beat(in_beat), .port_sel(sel), .payload(payload));

  assign push0 = in_valid && !sel;
  assign push1 = in_valid && sel;

  scfifo #(.lpm_width(8), .lpm_numwords(8)) u_q0 (
    .clock(clk), .data(payload), .wrreq(push0), .rdreq(q0_pop),
    .q(q0_data), .empty(q0_empty));
  scfifo #(.lpm_width(8), .lpm_numwords(8)) u_q1 (
    .clock(clk), .data(payload), .wrreq(push1), .rdreq(q1_pop),
    .q(q1_data), .empty(q1_empty));

  // the arbiter grants one queue per cycle; the BUGGY version keeps
  // popping while the forwarding slot is still occupied
  assign pop_ok = %s;
  assign q0_pop = !q0_empty && pop_ok;
  assign q1_pop = !q1_empty && q0_empty && pop_ok;

  always @(posedge clk) begin
    out_valid <= 1'b0;
    if (reset) begin
      fwd_vld <= 1'b0;
      busy <= 1'b0;
    end else begin
      // the egress serializer takes two cycles per beat
      if (fwd_vld && !busy) begin
        out_valid <= 1'b1;
        out_data <= fwd_data;
        out_port <= fwd_port;
        busy <= 1'b1;
        fwd_vld <= 1'b0;
      end else if (busy) begin
        busy <= 1'b0;
      end
      if (q0_pop) begin
        fwd_data <= q0_data;
        fwd_port <= 1'b0;
        fwd_vld <= 1'b1;
      end
      if (q1_pop) begin
        fwd_data <= q1_data;
        fwd_port <= 1'b1;
        fwd_vld <= 1'b1;
      end
    end
  end
endmodule
|}
    pop_ok

(* interleaved traffic to both ports *)
let stimulus cycle =
  let beats =
    [ 0x00A1; 0x01B1; 0x00A2; 0x01B2; 0x00A3; 0x01B3 ]
  in
  if cycle = 0 then [ ("reset", Bits.of_int ~width:1 1) ]
  else if cycle >= 2 && cycle - 2 < List.length beats then
    [
      ("reset", Bits.of_int ~width:1 0);
      ("in_valid", Bits.of_int ~width:1 1);
      ("in_beat", Bits.of_int ~width:16 (List.nth beats (cycle - 2)));
    ]
  else [ ("in_valid", Bits.of_int ~width:1 0) ]

let run_and_count src =
  let design = Fpga_hdl.Parser.parse_design src in
  let sim = Testbench.of_design ~top:"router" design in
  let forwarded = ref [] in
  for i = 0 to 40 do
    List.iter (fun (n, v) -> Simulator.set_input sim n v) (stimulus i);
    Simulator.step sim;
    if Simulator.read_int sim "out_valid" = 1 then
      forwarded :=
        (Simulator.read_int sim "out_port", Simulator.read_int sim "out_data")
        :: !forwarded
  done;
  List.rev !forwarded

let () =
  print_endline "== The symptom: beats go missing ==";
  let buggy = run_and_count (source ~buggy:true) in
  let fixed = run_and_count (source ~buggy:false) in
  Printf.printf "ingress: 6 beats; buggy egress: %d beats; fixed egress: %d beats\n"
    (List.length buggy) (List.length fixed);
  Printf.printf "buggy forwarded: %s\n"
    (String.concat " "
       (List.map (fun (p, d) -> Printf.sprintf "p%d:%02x" p d) buggy));

  print_endline "\n== Statistics Monitor confirms the loss ==";
  let design = Fpga_hdl.Parser.parse_design (source ~buggy:true) in
  let m = Option.get (Ast.find_module design "router") in
  let events =
    [
      { Fpga_debug.Stat_monitor.event_name = "beats_in"; trigger = Ast.Ident "in_valid" };
      { Fpga_debug.Stat_monitor.event_name = "beats_out"; trigger = Ast.Ident "out_valid" };
    ]
  in
  let plan = Fpga_debug.Stat_monitor.plan m events in
  let counted = Fpga_debug.Stat_monitor.instrument plan m in
  let design' =
    { Ast.modules = List.map (fun x -> if x == m then counted else x) design.Ast.modules }
  in
  let sim = Testbench.of_design ~top:"router" design' in
  let _ = Testbench.run ~max_cycles:40 sim stimulus in
  List.iter
    (fun (n, c) -> Printf.printf "  %s = %d\n" n c)
    (Fpga_debug.Stat_monitor.counts plan sim);

  print_endline "\n== LossCheck names the overwritten register ==";
  let spec =
    { Fpga_debug.Losscheck.source = "in_beat";
      valid = Ast.Ident "in_valid"; sink = "out_data" }
  in
  let result =
    Fpga_debug.Losscheck.localize ~max_cycles:40 ~top:"router" ~spec
      ~stimulus design
  in
  List.iter
    (fun reg -> Printf.printf "  potential data loss at: %s\n" reg)
    result.Fpga_debug.Losscheck.reported;
  print_endline
    "-> the arbiter refills the forwarding register while the two-cycle \
     egress serializer still holds an unsent beat";

  print_endline "\n== After the fix (one grant per cycle) ==";
  Printf.printf "fixed egress order: %s\n"
    (String.concat " "
       (List.map (fun (p, d) -> Printf.sprintf "p%d:%02x" p d) fixed))
