examples/fifo_data_loss.ml: Fpga_debug Fpga_hdl Fpga_testbed List Option Printf String
