examples/cpu_trace.mli:
