examples/prevention_toolkit.ml: Fpga_analysis Fpga_hdl Fpga_sim Fpga_testbed List Printf
