examples/grayscale_case_study.ml: Fpga_analysis Fpga_debug Fpga_hdl Fpga_sim Fpga_testbed List Option Printf String
