examples/fsm_trace_demo.ml: Fpga_analysis Fpga_debug Fpga_hdl Fpga_testbed List Option Printf String
