examples/packet_router.ml: Fpga_bits Fpga_debug Fpga_hdl Fpga_sim List Option Printf String
