examples/quickstart.ml: Fpga_bits Fpga_debug Fpga_hdl Fpga_sim List Printf
