examples/quickstart.mli:
