examples/prevention_toolkit.mli:
