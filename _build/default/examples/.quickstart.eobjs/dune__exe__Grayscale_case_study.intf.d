examples/grayscale_case_study.mli:
