examples/fifo_data_loss.mli:
