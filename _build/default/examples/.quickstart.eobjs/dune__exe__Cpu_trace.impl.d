examples/cpu_trace.ml: Fpga_debug Fpga_hdl Fpga_testbed List Option Printf
