examples/fsm_trace_demo.mli:
