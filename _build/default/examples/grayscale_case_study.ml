(* The debugging walkthrough of section 6.3, replayed on the testbed's
   D2 (Grayscale buffer overflow):

     1. the software side reports a hang,
     2. FSM Monitor shows the read FSM finished while the write FSM is
        stuck in WR_DATA, pointing at write-side data loss,
     3. Statistics Monitor confirms fewer pixels left than entered,
     4. LossCheck pinpoints the line buffer as the loss location.

   Run with:  dune exec examples/grayscale_case_study.exe *)

module Ast = Fpga_hdl.Ast
module Bug = Fpga_testbed.Bug
module Fsm_monitor = Fpga_debug.Fsm_monitor
module Stat_monitor = Fpga_debug.Stat_monitor
module Losscheck = Fpga_debug.Losscheck

let bug = Fpga_testbed.App_grayscale.bug

let () =
  print_endline "== Step 0: the symptom ==";
  let report = Bug.run bug ~buggy:true in
  Printf.printf
    "the acceleration task hangs: completion never observed in %d cycles \
     (stuck = %b), %d gray pixels were produced\n"
    bug.Bug.max_cycles report.Bug.stuck
    (List.length report.Bug.rows);

  print_endline "\n== Step 1: FSM Monitor ==";
  let design = Bug.design_of bug ~buggy:true in
  let m = Option.get (Ast.find_module design bug.Bug.top) in
  let fsm_plan = Fsm_monitor.plan m in
  Printf.printf "detected FSMs: %s\n"
    (String.concat ", "
       (List.map
          (fun f -> f.Fpga_analysis.Fsm_detect.state_var)
          fsm_plan.Fsm_monitor.fsms));
  let monitored = Fsm_monitor.instrument fsm_plan m in
  let report1 = Bug.run_design bug { Ast.modules = [ monitored ] } in
  List.iter
    (fun tr -> print_endline ("  " ^ Fsm_monitor.transition_to_string tr))
    (Fsm_monitor.transitions fsm_plan report1.Bug.log);
  List.iter
    (fun (var, state) -> Printf.printf "final state of %s: %s\n" var state)
    (Fsm_monitor.final_states fsm_plan report1.Bug.log);
  print_endline
    "-> the read FSM reached RD_FINISH but the write FSM never left \
     WR_DATA: the hang is in write-related logic";

  print_endline "\n== Step 2: Statistics Monitor ==";
  let events =
    [
      { Stat_monitor.event_name = "pixels_in"; trigger = Ast.Ident "in_valid" };
      { Stat_monitor.event_name = "pixels_out"; trigger = Ast.Ident "out_valid" };
    ]
  in
  let stat_plan = Stat_monitor.plan m events in
  let counted = Stat_monitor.instrument stat_plan m in
  let sim = Fpga_sim.Testbench.of_design ~top:bug.Bug.top { Ast.modules = [ counted ] } in
  let _ = Fpga_sim.Testbench.run ~max_cycles:bug.Bug.max_cycles sim bug.Bug.stimulus in
  let counts = Stat_monitor.counts stat_plan sim in
  List.iter (fun (name, n) -> Printf.printf "  %s = %d\n" name n) counts;
  (match Stat_monitor.check_balance counts ~producer:"pixels_in" ~consumer:"pixels_out" with
  | Some a -> print_endline ("-> " ^ Stat_monitor.anomaly_to_string a)
  | None -> print_endline "-> no anomaly (unexpected)");

  print_endline "\n== Step 3: LossCheck ==";
  let spec = Option.get bug.Bug.loss_spec in
  let result =
    Losscheck.localize ~ground_truth:bug.Bug.ground_truth
      ~max_cycles:bug.Bug.max_cycles ~top:bug.Bug.top ~spec
      ~stimulus:bug.Bug.stimulus design
  in
  Printf.printf "LossCheck generated %d lines of checking logic\n"
    result.Losscheck.generated_loc;
  List.iter
    (fun reg -> Printf.printf "-> potential data loss at register: %s\n" reg)
    result.Losscheck.reported;

  print_endline "\n== Step 4: the fix ==";
  print_endline
    "enlarging the line buffer (the upstream patch) makes the same \
     stimulus complete:";
  let fixed = Bug.run bug ~buggy:false in
  Printf.printf "fixed design: stuck = %b, %d pixels delivered\n"
    fixed.Bug.stuck
    (List.length fixed.Bug.rows)
