(* Quickstart: parse a small Verilog design, simulate it, trace it with
   SignalCat in both execution modes, and confirm that the unified logs
   agree.

   Run with:  dune exec examples/quickstart.exe *)

module Bits = Fpga_bits.Bits
module Parser = Fpga_hdl.Parser
module Simulator = Fpga_sim.Simulator
module Testbench = Fpga_sim.Testbench
module Signalcat = Fpga_debug.Signalcat

(* A counter that announces multiples of five through $display. *)
let source =
  {|
module counter (
  input clk,
  input reset,
  input enable,
  output reg [7:0] count
);
  always @(posedge clk) begin
    if (reset) count <= 8'd0;
    else if (enable) begin
      count <= count + 8'd1;
      if (count % 8'd5 == 8'd4)
        $display("count reaches a multiple of five: %d", count + 8'd1);
    end
  end
endmodule
|}

let stimulus cycle =
  [
    ("reset", Bits.of_int ~width:1 (if cycle = 0 then 1 else 0));
    ("enable", Bits.of_int ~width:1 (if cycle > 1 then 1 else 0));
  ]

let () =
  print_endline "== 1. Parse ==";
  let design = Parser.parse_design source in
  Printf.printf "parsed %d module(s); counter has %d always block(s)\n"
    (List.length design.Fpga_hdl.Ast.modules)
    (List.length
       (List.hd design.Fpga_hdl.Ast.modules).Fpga_hdl.Ast.always_blocks);

  print_endline "\n== 2. Simulate directly ==";
  let sim = Testbench.of_design ~top:"counter" design in
  for cycle = 0 to 20 do
    List.iter (fun (n, v) -> Simulator.set_input sim n v) (stimulus cycle);
    Simulator.step sim
  done;
  Printf.printf "count after 21 cycles: %d\n" (Simulator.read_int sim "count");

  print_endline "\n== 3. Unified logging with SignalCat ==";
  let run mode = Signalcat.run_and_log ~max_cycles:21 ~mode ~top:"counter" design stimulus in
  let sim_log = run Signalcat.Simulation in
  let fpga_log = run Signalcat.On_fpga in
  print_endline "simulation-mode log:";
  List.iter (fun (c, t) -> Printf.printf "  [cycle %2d] %s\n" c t) sim_log;
  print_endline "on-FPGA-mode log (reconstructed from the recording buffer):";
  List.iter (fun (c, t) -> Printf.printf "  [cycle %2d] %s\n" c t) fpga_log;
  Printf.printf "logs identical: %b\n" (sim_log = fpga_log)
