(* FSM Monitor on a deadlocked controller (the testbed's C1): the trace
   shows both engines parked in their waiting states, and the dependency
   analysis exposes the circular control dependency - the hardware
   analog of a lock cycle.

   Run with:  dune exec examples/fsm_trace_demo.exe *)

module Ast = Fpga_hdl.Ast
module Bug = Fpga_testbed.Bug
module Fsm_monitor = Fpga_debug.Fsm_monitor
module Deps = Fpga_analysis.Deps

let bug = Fpga_testbed.App_sdspi.c1

let () =
  print_endline "== Symptom ==";
  let report = Bug.run bug ~buggy:true in
  Printf.printf "transfer never completes within %d cycles (stuck = %b)\n"
    bug.Bug.max_cycles report.Bug.stuck;

  print_endline "\n== FSM Monitor ==";
  let design = Bug.design_of bug ~buggy:true in
  let m = Option.get (Ast.find_module design bug.Bug.top) in
  let plan = Fsm_monitor.plan m in
  let monitored = Fsm_monitor.instrument plan m in
  let report = Bug.run_design bug { Ast.modules = [ monitored ] } in
  let transitions = Fsm_monitor.transitions plan report.Bug.log in
  if transitions = [] then
    print_endline "no state transitions at all - both FSMs are parked:";
  List.iter
    (fun tr -> print_endline ("  " ^ Fsm_monitor.transition_to_string tr))
    transitions;
  List.iter
    (fun (f : Fpga_analysis.Fsm_detect.fsm) ->
      Printf.printf "  %s: %d named states\n" f.Fpga_analysis.Fsm_detect.state_var
        (List.length f.Fpga_analysis.Fsm_detect.state_names))
    plan.Fsm_monitor.fsms;

  print_endline "\n== Dependency analysis: the circular wait ==";
  let g = Deps.of_module m in
  let cycles = Deps.control_cycles g in
  List.iter
    (fun cycle ->
      Printf.printf "  control cycle: %s -> (back to start)\n"
        (String.concat " -> " cycle))
    cycles;
  print_endline
    "-> cmd waits for data_idle, data raises data_idle only after \
     cmd_active: initialize data_idle at reset to break the cycle";

  print_endline "\n== After the fix ==";
  let fixed = Bug.run bug ~buggy:false in
  Printf.printf "fixed design completes: stuck = %b\n" fixed.Bug.stuck
