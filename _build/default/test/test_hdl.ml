(* Tests for the Verilog-subset lexer, parser, printer, and builder. *)

open Fpga_hdl
module Bits = Fpga_bits.Bits

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let counter_src =
  {|
// simple counter with an enable
module counter (
  input clk,
  input reset,
  input enable,
  output reg [7:0] count
);
  always @(posedge clk) begin
    if (reset) count <= 8'd0;
    else if (enable) count <= count + 8'd1;
  end
endmodule
|}

let fsm_src =
  {|
module fsm (
  input clk,
  input request_valid,
  input work_done,
  output [1:0] state_out
);
  localparam IDLE = 2'd0;
  localparam WORK = 2'd1;
  localparam FINISH = 2'd2;
  reg [1:0] state;
  assign state_out = state;
  always @(posedge clk) begin
    case (state)
      IDLE: if (request_valid) state <= WORK;
      WORK: if (work_done) state <= FINISH;
      FINISH: state <= IDLE;
    endcase
  end
endmodule
|}

let test_lexer () =
  let toks = Lexer.tokenize "module m; endmodule // done" in
  check_int "token count" 5 (List.length toks);
  let toks = Lexer.tokenize "8'hFF 4'b1010 2'd3 42" in
  let values =
    List.filter_map
      (fun (t : Lexer.lexed) ->
        match t.tok with
        | Lexer.Tnumber { value; _ } -> Some (Bits.to_int value)
        | _ -> None)
      toks
  in
  Alcotest.(check (list int)) "literals" [ 255; 10; 3; 42 ] values;
  let toks = Lexer.tokenize "a <= b <<< 2" in
  check_int "lex <= and <<<" 6 (List.length toks);
  (match Lexer.tokenize "$display(\"x=%d\", x)" with
  | { tok = Lexer.Tsystem "display"; _ } :: _ -> ()
  | _ -> Alcotest.fail "expected $display token");
  Alcotest.check_raises "bad char" (Lexer.Lex_error ("unexpected character '`'", 1))
    (fun () -> ignore (Lexer.tokenize "`"))

let test_parse_counter () =
  let m = Parser.parse_module counter_src in
  check_string "name" "counter" m.Ast.mod_name;
  check_int "ports" 4 (List.length m.Ast.ports);
  check_int "always blocks" 1 (List.length m.Ast.always_blocks);
  (* output reg creates a decl *)
  check_bool "count is reg" true
    (match Ast.find_decl m "count" with
    | Some { Ast.kind = Ast.Reg; width = 8; _ } -> true
    | _ -> false);
  match m.Ast.always_blocks with
  | [ { Ast.sens = Ast.Posedge "clk"; stmts = [ Ast.If (Ast.Ident "reset", _, _) ] } ]
    ->
      ()
  | _ -> Alcotest.fail "unexpected always structure"

let test_parse_fsm () =
  let m = Parser.parse_module fsm_src in
  check_int "localparams" 3 (List.length m.Ast.localparams);
  check_bool "IDLE value" true
    (Bits.equal
       (List.assoc "IDLE" m.Ast.localparams)
       (Bits.of_int ~width:2 0));
  check_int "assigns" 1 (List.length m.Ast.assigns);
  match m.Ast.always_blocks with
  | [ { Ast.stmts = [ Ast.Case (Ast.Ident "state", items, None) ]; _ } ] ->
      check_int "case items" 3 (List.length items)
  | _ -> Alcotest.fail "unexpected fsm structure"

let test_parse_expressions () =
  let m =
    Parser.parse_module
      {|
module exprs (input [7:0] a, input [7:0] b, output [7:0] o);
  wire [7:0] w1, w2;
  assign w1 = (a + b) * 8'd2 - (a >> 1);
  assign w2 = a < b ? {a[3:0], b[7:4]} : {2{a[5:2]}};
  assign o = w1 ^ w2 & ~a | (b == 8'd0 ? 8'hff : 8'h00);
endmodule
|}
  in
  check_int "three assigns" 3 (List.length m.Ast.assigns);
  (* Verilog precedence: & > ^ > |, so w1 ^ w2 & ~a | X parses as
     (w1 ^ (w2 & ~a)) | X. *)
  match List.nth m.Ast.assigns 2 with
  | _, Ast.Binop (Ast.Bor, Ast.Binop (Ast.Bxor, _, Ast.Binop (Ast.Band, _, _)), _)
    ->
      ()
  | _ -> Alcotest.fail "operator precedence wrong"

let test_parse_memory_and_instance () =
  let d =
    Parser.parse_design
      {|
module ram (input clk, input [3:0] waddr, input [7:0] wdata, input we,
            input [3:0] raddr, output reg [7:0] rdata);
  reg [7:0] mem [0:15];
  always @(posedge clk) begin
    if (we) mem[waddr] <= wdata;
    rdata <= mem[raddr];
  end
endmodule

module top (input clk, output [7:0] out);
  reg [3:0] addr;
  ram u_ram (.clk(clk), .waddr(addr), .wdata(8'd5), .we(1'b1),
             .raddr(addr), .rdata(out));
  always @(posedge clk) addr <= addr + 4'd1;
endmodule
|}
  in
  check_int "two modules" 2 (List.length d.Ast.modules);
  let ram = Option.get (Ast.find_module d "ram") in
  check_bool "memory decl" true
    (match Ast.find_decl ram "mem" with
    | Some { Ast.depth = Some 16; width = 8; _ } -> true
    | _ -> false);
  let top = Option.get (Ast.find_module d "top") in
  check_int "instances" 1 (List.length top.Ast.instances);
  let i = List.hd top.Ast.instances in
  check_string "instance target" "ram" i.Ast.target;
  check_int "connections" 6 (List.length i.Ast.conns)

let test_parse_display () =
  let m =
    Parser.parse_module
      {|
module dbg (input clk, input [7:0] v);
  always @(posedge clk) begin
    if (v > 8'd10) begin
      $display("big value %d at %h", v, v);
      $finish;
    end
  end
endmodule
|}
  in
  match m.Ast.always_blocks with
  | [ { Ast.stmts = [ Ast.If (_, [ Ast.Display (fmt, args); Ast.Finish ], []) ]; _ } ]
    ->
      check_string "format" "big value %d at %h" fmt;
      check_int "args" 2 (List.length args)
  | _ -> Alcotest.fail "display not parsed"

let test_parse_parameters () =
  let m =
    Parser.parse_module
      {|
module fifo #(parameter DEPTH = 4, parameter WIDTH = 8) (
  input clk,
  input [WIDTH-1:0] din,
  output [WIDTH-1:0] dout
);
  reg [WIDTH-1:0] buffer [0:DEPTH-1];
  reg [WIDTH-1:0] head;
  assign dout = head;
  always @(posedge clk) head <= din;
endmodule
|}
  in
  check_int "param DEPTH" 4 (List.assoc "DEPTH" m.Ast.params);
  check_bool "width folded" true
    (match Ast.find_decl m "buffer" with
    | Some { Ast.width = 8; depth = Some 4; _ } -> true
    | _ -> false);
  check_int "port width folded" 8
    (Option.get (Ast.find_port m "din")).Ast.port_width

let test_parse_errors () =
  let fails src =
    match Parser.parse_design src with
    | exception Parser.Parse_error _ -> true
    | _ -> false
  in
  check_bool "missing semicolon" true
    (fails "module m (input a); assign b = a endmodule");
  check_bool "bad range" true
    (fails "module m (input a); wire [3:1] w; endmodule");
  check_bool "non-constant range" true
    (fails "module m (input a); wire [a:0] w; endmodule");
  check_bool "unterminated module" true (fails "module m (input a);")

let test_roundtrip () =
  (* parse -> print -> parse yields a structurally equal module *)
  let check_rt src =
    let m1 = Parser.parse_module src in
    let printed = Pp_verilog.module_to_string m1 in
    let m2 = Parser.parse_module printed in
    Alcotest.(check bool)
      (Printf.sprintf "roundtrip %s" m1.Ast.mod_name)
      true (m1 = m2)
  in
  check_rt counter_src;
  check_rt fsm_src

let test_builder () =
  let open Builder in
  let m =
    module_ "inc"
      ~ports:[ input ~width:1 "clk"; input ~width:8 "a"; output ~width:8 "b" ]
      ~decls:[ reg ~width:8 "b" ]
      ~always_blocks:
        [ always_ff [ assign_nb "b" (ident "a" +: const ~width:8 1) ] ]
  in
  let printed = Pp_verilog.module_to_string m in
  let reparsed = Parser.parse_module printed in
  check_string "builder roundtrip name" "inc" reparsed.Ast.mod_name;
  check_int "builder loc" (Pp_verilog.module_loc m)
    (Pp_verilog.module_loc reparsed)

let test_loc_counting () =
  let m = Parser.parse_module counter_src in
  check_bool "module_loc positive" true (Pp_verilog.module_loc m > 5);
  let s = Ast.If (Ast.Ident "x", [ Ast.Finish ], [ Ast.Finish ]) in
  check_int "stmt_loc if/else" 5 (Pp_verilog.stmt_loc s)

let test_read_write_sets () =
  let m = Parser.parse_module counter_src in
  let a = List.hd m.Ast.always_blocks in
  let reads = Ast.dedup (List.concat_map Ast.stmt_reads a.Ast.stmts) in
  let writes = Ast.dedup (List.concat_map Ast.stmt_writes a.Ast.stmts) in
  Alcotest.(check (list string)) "reads" [ "count"; "enable"; "reset" ] reads;
  Alcotest.(check (list string)) "writes" [ "count" ] writes

(* Property: printing a random expression reparses to the same tree. *)

let gen_expr_leaf =
  QCheck2.Gen.(
    oneof
      [
        map (fun n -> Ast.Ident (Printf.sprintf "s%d" (abs n mod 4))) int;
        map (fun n -> Builder.const ~width:8 (abs n mod 256)) int;
      ])

let gen_expr =
  QCheck2.Gen.(
    sized_size (int_range 0 4)
    @@ fix (fun self n ->
           if n = 0 then gen_expr_leaf
           else
             oneof
               [
                 gen_expr_leaf;
                 map2
                   (fun a b -> Ast.Binop (Ast.Add, a, b))
                   (self (n / 2)) (self (n / 2));
                 map2
                   (fun a b -> Ast.Binop (Ast.Bxor, a, b))
                   (self (n / 2)) (self (n / 2));
                 map3
                   (fun c a b -> Ast.Cond (c, a, b))
                   (self (n / 2)) (self (n / 2)) (self (n / 2));
               ]))

let prop_expr_roundtrip =
  QCheck2.Test.make ~count:200 ~name:"expression print/parse roundtrip"
    gen_expr (fun e ->
      let src =
        Printf.sprintf
          "module t (input [7:0] s0, input [7:0] s1, input [7:0] s2, input \
           [7:0] s3, output [7:0] o);\n\
           assign o = %s;\n\
           endmodule"
          (Pp_verilog.expr_str e)
      in
      let m = Parser.parse_module src in
      match m.Ast.assigns with [ (_, e') ] -> e = e' | _ -> false)

let suite =
  [
    Alcotest.test_case "lexer" `Quick test_lexer;
    Alcotest.test_case "parse counter" `Quick test_parse_counter;
    Alcotest.test_case "parse fsm" `Quick test_parse_fsm;
    Alcotest.test_case "parse expressions" `Quick test_parse_expressions;
    Alcotest.test_case "parse memory and instance" `Quick
      test_parse_memory_and_instance;
    Alcotest.test_case "parse display" `Quick test_parse_display;
    Alcotest.test_case "parse parameters" `Quick test_parse_parameters;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "print/parse roundtrip" `Quick test_roundtrip;
    Alcotest.test_case "builder" `Quick test_builder;
    Alcotest.test_case "loc counting" `Quick test_loc_counting;
    Alcotest.test_case "read/write sets" `Quick test_read_write_sets;
    QCheck_alcotest.to_alcotest prop_expr_roundtrip;
  ]

(* --- additional parser/lexer edge cases ---------------------------------- *)

let test_error_line_numbers () =
  (match Parser.parse_design "module m (input a);\n\nassign b = ;\nendmodule" with
  | exception Parser.Parse_error (_, line) -> check_int "error on line 3" 3 line
  | _ -> Alcotest.fail "expected a parse error");
  match Lexer.tokenize "module\n\n\n`" with
  | exception Lexer.Lex_error (_, line) -> check_int "lex error on line 4" 4 line
  | _ -> Alcotest.fail "expected a lex error"

let test_comments_and_whitespace () =
  let m =
    Parser.parse_module
      "module m (input a, /* inline */ output o);\n\
       // a line comment\n\
       /* a block\n\
          comment spanning lines */\n\
       assign o = a; // trailing\n\
       endmodule"
  in
  check_int "one assign survives the comments" 1 (List.length m.Ast.assigns)

let test_multi_decl_and_chained_assign () =
  let m =
    Parser.parse_module
      {|
module m (input [3:0] a, output [3:0] o);
  wire [3:0] w1, w2, w3;
  assign w1 = a, w2 = w1, w3 = w2;
  assign o = w3;
endmodule
|}
  in
  check_int "three wires" 3
    (List.length (List.filter (fun (d : Ast.decl) -> d.Ast.kind = Ast.Wire) m.Ast.decls));
  check_int "chained assigns split" 4 (List.length m.Ast.assigns)

let test_nested_concat_repeat () =
  let m =
    Parser.parse_module
      {|
module m (input [3:0] a, output [15:0] o);
  assign o = {{2{a[3]}}, a, {2{a[0]}}, a[2:0], a[3:3]};
endmodule
|}
  in
  match m.Ast.assigns with
  | [ (_, Ast.Concat parts) ] -> check_int "five concat parts" 5 (List.length parts)
  | _ -> Alcotest.fail "expected a concat"

let test_else_if_chain () =
  let m =
    Parser.parse_module
      {|
module m (input clk, input [1:0] s, output reg [3:0] o);
  always @(posedge clk) begin
    if (s == 2'd0) o <= 4'd1;
    else if (s == 2'd1) o <= 4'd2;
    else if (s == 2'd2) o <= 4'd3;
    else o <= 4'd4;
  end
endmodule
|}
  in
  (* four leaves under nested else-ifs *)
  let a = List.hd m.Ast.always_blocks in
  check_int "four assignments" 4
    (List.length (Fpga_analysis.Path_constraint.assignments_of_always a))

let suite =
  suite
  @ [
      Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
      Alcotest.test_case "comments and whitespace" `Quick
        test_comments_and_whitespace;
      Alcotest.test_case "multi decl / chained assign" `Quick
        test_multi_decl_and_chained_assign;
      Alcotest.test_case "nested concat repeat" `Quick test_nested_concat_repeat;
      Alcotest.test_case "else-if chain" `Quick test_else_if_chain;
    ]

(* --- robustness: arbitrary input never escapes the typed errors ----------- *)

let prop_parser_total =
  QCheck2.Test.make ~count:300 ~name:"parser fails only with typed errors"
    QCheck2.Gen.(string_size ~gen:printable (int_range 0 120))
    (fun junk ->
      match Parser.parse_design junk with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true
      | exception _ -> false)

let prop_parser_total_verilogish =
  (* junk assembled from Verilog tokens is more likely to reach deep
     parser states *)
  let fragment =
    QCheck2.Gen.oneofl
      [ "module"; "endmodule"; "assign"; "always"; "@"; "("; ")"; "begin";
        "end"; "if"; "else"; "case"; "endcase"; "posedge"; "clk"; "x"; "=";
        "<="; ";"; "["; "]"; "7:0"; "8'hFF"; "{"; "}"; ","; "+"; "reg";
        "wire"; "input"; "output"; "$display"; "\"s\"" ]
  in
  QCheck2.Test.make ~count:300 ~name:"parser totality on token soup"
    QCheck2.Gen.(list_size (int_range 0 40) fragment)
    (fun toks ->
      let src = String.concat " " toks in
      match Parser.parse_design src with
      | _ -> true
      | exception Parser.Parse_error _ -> true
      | exception Lexer.Lex_error _ -> true
      | exception _ -> false)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_parser_total;
      QCheck_alcotest.to_alcotest prop_parser_total_verilogish;
    ]
