(* Unit tests for the static analyses: path constraints, dependency
   graphs, FSM detection heuristics, propagation relations, widths, and
   IP models. *)

open Fpga_hdl
open Fpga_analysis
module Bits = Fpga_bits.Bits

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_strings = Alcotest.(check (list string))

let parse = Parser.parse_module

(* --- path constraints -------------------------------------------------- *)

let test_path_constraints () =
  let m =
    parse
      {|
module m (input clk, input a, input b, input [1:0] s, output reg [7:0] x);
  always @(posedge clk) begin
    if (a) begin
      x <= 8'd1;
      if (b) x <= 8'd2;
    end else begin
      case (s)
        2'd0: x <= 8'd3;
        2'd1, 2'd2: x <= 8'd4;
        default: x <= 8'd5;
      endcase
    end
  end
endmodule
|}
  in
  let a = List.hd m.Ast.always_blocks in
  let assigns = Path_constraint.assignments_of_always a in
  check_int "five assignments" 5 (List.length assigns);
  let cond_of v =
    List.filter_map
      (fun (_, rhs, cond) ->
        if rhs = Ast.Const (Bits.of_int ~width:8 v) then
          Some (Pp_verilog.expr_str cond)
        else None)
      assigns
    |> List.hd
  in
  Alcotest.(check string) "plain if" "a" (cond_of 1);
  Alcotest.(check string) "nested if" "(a && b)" (cond_of 2);
  check_bool "case arm mentions scrutinee" true
    (let c = cond_of 3 in
     String.length c > 0 && String.sub c 0 2 = "(!");
  check_bool "multi-label arm is a disjunction" true
    (let c = cond_of 4 in
     let contains s sub =
       let n = String.length sub and h = String.length s in
       let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     contains c "||");
  check_bool "default negates all labels" true
    (let c = cond_of 5 in
     String.length c > String.length (cond_of 3))

let test_display_constraints () =
  let m =
    parse
      {|
module m (input clk, input go);
  always @(posedge clk) begin
    if (go) $display("fired");
  end
endmodule
|}
  in
  match Path_constraint.displays_of_always (List.hd m.Ast.always_blocks) with
  | [ (fmt, [], cond) ] ->
      Alcotest.(check string) "format" "fired" fmt;
      Alcotest.(check string) "condition" "go" (Pp_verilog.expr_str cond)
  | _ -> Alcotest.fail "expected one display"

(* --- dependency graphs -------------------------------------------------- *)

let pipeline_src =
  {|
module pipe (input clk, input [7:0] d, input en, output [7:0] q);
  reg [7:0] s1, s2, s3;
  wire [7:0] w;
  assign w = s1 + 8'd1;
  assign q = s3;
  always @(posedge clk) begin
    if (en) s1 <= d;
    s2 <= w;
    s3 <= s2;
  end
endmodule
|}

let test_backward_closure () =
  let m = parse pipeline_src in
  let g = Deps.of_module m in
  let chain3 = Deps.backward_closure g ~target:"s3" ~cycles:3 in
  check_bool "s3 depends on d within 3 cycles" true (List.mem "d" chain3);
  check_bool "closure includes control source en" true (List.mem "en" chain3);
  let chain1 = Deps.backward_closure g ~target:"s3" ~cycles:1 in
  check_bool "1 cycle reaches s2" true (List.mem "s2" chain1);
  check_bool "1 cycle does not reach d" false (List.mem "d" chain1);
  let data_only = Deps.backward_closure ~data_only:true g ~target:"s3" ~cycles:3 in
  check_bool "data-only chain drops en" false (List.mem "en" data_only);
  check_bool "data-only chain keeps d" true (List.mem "d" data_only)

let test_forward_closure () =
  let m = parse pipeline_src in
  let g = Deps.of_module m in
  let fwd = Deps.forward_closure g ~source:"d" in
  List.iter
    (fun s -> check_bool ("d reaches " ^ s) true (List.mem s fwd))
    [ "s1"; "w"; "s2"; "s3"; "q" ]

let test_control_cycles_absent () =
  let m = parse pipeline_src in
  let g = Deps.of_module m in
  check_int "no control cycles in a pipeline" 0
    (List.length (Deps.control_cycles g))

(* --- FSM detection ------------------------------------------------------ *)

let test_fsm_detect_positive () =
  let m =
    parse
      {|
module fsm (input clk, input go, input done_sig, output [1:0] so);
  localparam IDLE = 2'd0;
  localparam RUN = 2'd1;
  localparam FIN = 2'd2;
  reg [1:0] state;
  assign so = state;
  always @(posedge clk) begin
    case (state)
      IDLE: if (go) state <= RUN;
      RUN: if (done_sig) state <= FIN;
      FIN: state <= IDLE;
    endcase
  end
endmodule
|}
  in
  match Fsm_detect.detect m with
  | [ f ] ->
      Alcotest.(check string) "variable" "state" f.Fsm_detect.state_var;
      check_int "three named states" 3 (List.length f.Fsm_detect.state_names);
      Alcotest.(check string)
        "value 1 is RUN" "RUN"
        (Fsm_detect.state_name f (Bits.of_int ~width:2 1))
  | l -> Alcotest.failf "expected exactly one FSM, got %d" (List.length l)

let test_fsm_detect_rejects_counter () =
  let m =
    parse
      {|
module c (input clk, output [3:0] o);
  reg [3:0] count;
  assign o = count;
  always @(posedge clk) count <= count + 4'd1;
endmodule
|}
  in
  check_int "a counter is not an FSM" 0 (List.length (Fsm_detect.detect m))

let test_fsm_detect_rejects_datapath () =
  let m =
    parse
      {|
module d (input clk, input [7:0] din, output [7:0] o);
  reg [7:0] hold;
  assign o = hold;
  always @(posedge clk) hold <= din;
endmodule
|}
  in
  check_int "a data register is not an FSM" 0 (List.length (Fsm_detect.detect m))

let test_fsm_detect_rejects_bit_selected () =
  (* state-shaped register disqualified by bit selection elsewhere *)
  let m =
    parse
      {|
module b (input clk, input go, output o);
  reg [1:0] mode;
  assign o = mode[0];
  always @(posedge clk) begin
    case (mode)
      2'd0: if (go) mode <= 2'd1;
      2'd1: mode <= 2'd0;
    endcase
  end
endmodule
|}
  in
  check_int "bit-selected register rejected" 0 (List.length (Fsm_detect.detect m))

(* --- widths ------------------------------------------------------------- *)

let test_widths () =
  let m =
    parse
      {|
module w (input [7:0] a, input [15:0] b, input c, output [7:0] o);
  reg [7:0] mem [0:3];
  wire [23:0] cat;
  assign cat = {b, a};
  assign o = a;
endmodule
|}
  in
  let width e = Width.of_expr m e in
  check_int "ident" 8 (width (Ast.Ident "a"));
  check_int "binop max" 16 (width (Ast.Binop (Ast.Add, Ast.Ident "a", Ast.Ident "b")));
  check_int "compare is 1" 1 (width (Ast.Binop (Ast.Lt, Ast.Ident "a", Ast.Ident "b")));
  check_int "concat sums" 24 (width (Ast.Concat [ Ast.Ident "b"; Ast.Ident "a" ]));
  check_int "memory word" 8 (width (Ast.Index ("mem", Ast.Ident "c")));
  check_int "vector bit" 1 (width (Ast.Index ("a", Ast.Ident "c")));
  check_int "range" 4 (width (Ast.Range ("a", 5, 2)));
  check_int "cond max" 16
    (width (Ast.Cond (Ast.Ident "c", Ast.Ident "a", Ast.Ident "b")));
  check_int "repeat" 16 (width (Ast.Repeat (2, Ast.Ident "a")));
  check_int "clog2 1" 1 (Width.clog2 1);
  check_int "clog2 8" 3 (Width.clog2 8);
  check_int "clog2 9" 4 (Width.clog2 9);
  Alcotest.check_raises "unknown signal" (Width.Unknown_width "zz") (fun () ->
      ignore (width (Ast.Ident "zz")))

(* --- propagation relations ---------------------------------------------- *)

let test_propagation_table () =
  (* the running example of section 4.5.1 *)
  let m =
    parse
      {|
module ex (input clk, input cond_a, input cond_b, input in_valid,
           input [7:0] in, input [7:0] a, output reg [7:0] out);
  reg [7:0] b;
  always @(posedge clk) begin
    if (cond_a) out <= a;
    else if (cond_b) out <= b;
    if (in_valid) b <= in;
  end
endmodule
|}
  in
  let table = Propagation.of_module m in
  let rel src dst =
    List.find_opt
      (fun r -> r.Propagation.src = src && r.Propagation.dst = dst)
      table
  in
  check_bool "a ~> out" true (rel "a" "out" <> None);
  check_bool "b ~> out" true (rel "b" "out" <> None);
  check_bool "in ~> b" true (rel "in" "b" <> None);
  (match rel "b" "out" with
  | Some r ->
      Alcotest.(check string)
        "b's condition is !cond_a && cond_b" "(!(cond_a) && cond_b)"
        (Pp_verilog.expr_str r.Propagation.cond)
  | None -> Alcotest.fail "missing relation");
  (match rel "in" "b" with
  | Some r ->
      Alcotest.(check string) "in's condition" "in_valid"
        (Pp_verilog.expr_str r.Propagation.cond)
  | None -> Alcotest.fail "missing relation");
  let seq = Propagation.sequence_registers table ~source:"in" ~sink:"out" in
  check_strings "propagation sequence" [ "b"; "in"; "out" ] seq

(* --- IP models ----------------------------------------------------------- *)

let test_ip_models () =
  let m =
    parse
      {|
module f (input clk, input [7:0] din, input push, input pop,
          output [7:0] q_out, output fifo_full);
  scfifo #(.lpm_width(8), .lpm_numwords(4)) u0 (
    .clock(clk), .data(din), .wrreq(push), .rdreq(pop),
    .q(q_out), .full(fifo_full));
endmodule
|}
  in
  let i = List.hd m.Ast.instances in
  let rels = Ip_models.propagation_relations i in
  check_bool "din ~> q_out exists" true
    (List.exists
       (fun r -> r.Propagation.src = "din" && r.Propagation.dst = "q_out")
       rels);
  (match
     List.find_opt
       (fun r -> r.Propagation.src = "din" && r.Propagation.dst = "q_out")
       rels
   with
  | Some r ->
      check_bool "condition gates on full" true
        (let s = Pp_verilog.expr_str r.Propagation.cond in
         let contains sub =
           let n = String.length sub and h = String.length s in
           let rec go i = i + n <= h && (String.sub s i n = sub || go (i + 1)) in
           go 0
         in
         contains "push" && contains "fifo_full")
  | None -> Alcotest.fail "missing IP relation");
  check_bool "has model" true (Ip_models.has_model "scfifo");
  check_bool "no model for unknown" false (Ip_models.has_model "mystery_ip");
  check_bool "dependency edges mirror relations" true
    (List.length (Ip_models.dependency_edges i) >= List.length rels - 1)

let suite =
  [
    Alcotest.test_case "path constraints" `Quick test_path_constraints;
    Alcotest.test_case "display constraints" `Quick test_display_constraints;
    Alcotest.test_case "backward closure" `Quick test_backward_closure;
    Alcotest.test_case "forward closure" `Quick test_forward_closure;
    Alcotest.test_case "no control cycles in pipeline" `Quick
      test_control_cycles_absent;
    Alcotest.test_case "fsm detect positive" `Quick test_fsm_detect_positive;
    Alcotest.test_case "fsm rejects counter" `Quick
      test_fsm_detect_rejects_counter;
    Alcotest.test_case "fsm rejects datapath" `Quick
      test_fsm_detect_rejects_datapath;
    Alcotest.test_case "fsm rejects bit-selected" `Quick
      test_fsm_detect_rejects_bit_selected;
    Alcotest.test_case "widths" `Quick test_widths;
    Alcotest.test_case "propagation table" `Quick test_propagation_table;
    Alcotest.test_case "ip models" `Quick test_ip_models;
  ]

(* --- lint ---------------------------------------------------------------- *)

let lint_findings src rule =
  let m = parse src in
  List.filter (fun (f : Lint.finding) -> f.Lint.rule = rule) (Lint.check m)

let test_lint_unused () =
  let fs =
    lint_findings
      {|
module m (input clk, output reg [7:0] o);
  reg [7:0] ghost;
  always @(posedge clk) o <= o + 8'd1;
endmodule
|}
      "unused"
  in
  check_int "one unused" 1 (List.length fs);
  Alcotest.(check string) "ghost flagged" "ghost" (List.hd fs).Lint.signal

let test_lint_undriven () =
  let fs =
    lint_findings
      {|
module m (input clk, output reg [7:0] o);
  reg [7:0] phantom;
  always @(posedge clk) o <= phantom;
endmodule
|}
      "undriven"
  in
  check_int "one undriven" 1 (List.length fs)

let test_lint_multiple_drivers () =
  let fs =
    lint_findings
      {|
module m (input clk, input a, output reg [7:0] o);
  always @(posedge clk) if (a) o <= 8'd1;
  always @(posedge clk) if (!a) o <= 8'd2;
endmodule
|}
      "multiple-drivers"
  in
  check_int "conflict found" 1 (List.length fs)

let test_lint_truncation () =
  (* the D5 bit-truncation shape is flagged *)
  let fs =
    lint_findings
      {|
module m (input clk, input [63:0] right, output reg [41:0] left);
  always @(posedge clk) left <= right >> 6;
endmodule
|}
      "truncation"
  in
  check_int "truncation flagged" 1 (List.length fs);
  (* counters incremented by literals are not flagged *)
  let clean =
    lint_findings
      {|
module m (input clk, output reg [3:0] n);
  always @(posedge clk) n <= n + 4'd1;
endmodule
|}
      "truncation"
  in
  check_int "counter not flagged" 0 (List.length clean)

let test_lint_overflow_prone () =
  (* the D1 buffer-overflow shape: 4-bit index into 12 entries *)
  let fs =
    lint_findings
      {|
module m (input clk, input [3:0] i, input [7:0] d, output [7:0] o);
  reg [7:0] buf12 [0:11];
  assign o = buf12[i];
  always @(posedge clk) buf12[i] <= d;
endmodule
|}
      "overflow-prone"
  in
  check_bool "flagged at least once" true (List.length fs >= 1);
  (* a power-of-two buffer wraps instead of dropping: not this rule *)
  let pow2 =
    lint_findings
      {|
module m (input clk, input [3:0] i, input [7:0] d, output [7:0] o);
  reg [7:0] buf16 [0:15];
  assign o = buf16[i];
  always @(posedge clk) buf16[i] <= d;
endmodule
|}
      "overflow-prone"
  in
  check_int "pow2 not flagged" 0 (List.length pow2)

let test_lint_incomplete_case () =
  let fs =
    lint_findings
      {|
module m (input clk, input [1:0] s, output reg [7:0] o);
  always @(posedge clk) begin
    case (s)
      2'd0: o <= 8'd1;
      2'd1: o <= 8'd2;
    endcase
  end
endmodule
|}
      "incomplete-case"
  in
  check_int "incomplete case flagged" 1 (List.length fs);
  let with_default =
    lint_findings
      {|
module m (input clk, input [1:0] s, output reg [7:0] o);
  always @(posedge clk) begin
    case (s)
      2'd0: o <= 8'd1;
      default: o <= 8'd0;
    endcase
  end
endmodule
|}
      "incomplete-case"
  in
  check_int "default silences" 0 (List.length with_default)

let test_lint_smoke_over_testbed () =
  (* the linter runs cleanly over every testbed design *)
  List.iter
    (fun (bug : Fpga_testbed.Bug.t) ->
      let design = Fpga_testbed.Bug.design_of bug ~buggy:true in
      let results = Lint.check_design design in
      check_bool (bug.Fpga_testbed.Bug.id ^ " linted") true
        (List.length results >= 1))
    Fpga_testbed.Registry.all

let suite =
  suite
  @ [
      Alcotest.test_case "lint unused" `Quick test_lint_unused;
      Alcotest.test_case "lint undriven" `Quick test_lint_undriven;
      Alcotest.test_case "lint multiple drivers" `Quick
        test_lint_multiple_drivers;
      Alcotest.test_case "lint truncation" `Quick test_lint_truncation;
      Alcotest.test_case "lint overflow-prone" `Quick test_lint_overflow_prone;
      Alcotest.test_case "lint incomplete case" `Quick
        test_lint_incomplete_case;
      Alcotest.test_case "lint smoke over testbed" `Quick
        test_lint_smoke_over_testbed;
    ]

(* --- slice-precise dependencies (section 4.3) ---------------------------- *)

let test_slice_precision () =
  (* the partial-assignment example: the halves of [packed] have
     independent drivers, and the slice-precise chain keeps them apart *)
  let m =
    parse
      {|
module m (input clk, input [7:0] a, input [7:0] b, output reg [7:0] lo_out,
          output reg [7:0] hi_out);
  reg [15:0] packed_word;
  always @(posedge clk) begin
    packed_word[7:0] <= a;
    packed_word[15:8] <= b;
    lo_out <= packed_word[7:0];
    hi_out <= packed_word[15:8];
  end
endmodule
|}
  in
  (* name-level analysis conflates the halves... *)
  let coarse = Deps.backward_closure (Deps.of_module m) ~target:"lo_out" ~cycles:4 in
  check_bool "coarse chain includes b" true (List.mem "b" coarse);
  (* ...the slice-precise analysis does not *)
  let fine = Deps.backward_closure_sliced m ~target:"lo_out" ~cycles:4 in
  check_bool "sliced chain includes a" true (List.mem "a" fine);
  check_bool "sliced chain excludes b" false (List.mem "b" fine);
  let fine_hi = Deps.backward_closure_sliced m ~target:"hi_out" ~cycles:4 in
  check_bool "hi chain includes b" true (List.mem "b" fine_hi);
  check_bool "hi chain excludes a" false (List.mem "a" fine_hi)

let test_slice_overlap_rules () =
  let s name hi lo = { Deps.s_name = name; s_hi = hi; s_lo = lo } in
  check_bool "disjoint" false (Deps.overlaps (s "x" 7 0) (s "x" 15 8));
  check_bool "adjacent overlap at edge" true (Deps.overlaps (s "x" 8 0) (s "x" 15 8));
  check_bool "containment" true (Deps.overlaps (s "x" 15 0) (s "x" 7 4));
  check_bool "different names" false (Deps.overlaps (s "x" 7 0) (s "y" 7 0))

let test_slice_variable_index_conservative () =
  (* a variable bit-select write covers the whole vector, so slice
     precision degrades gracefully to the name-level answer *)
  let m =
    parse
      {|
module m (input clk, input [7:0] a, input [2:0] i, output reg o);
  reg [7:0] v;
  always @(posedge clk) begin
    v[i] <= a[0];
    o <= v[7];
  end
endmodule
|}
  in
  let fine = Deps.backward_closure_sliced m ~target:"o" ~cycles:4 in
  check_bool "variable-index write reaches the read" true (List.mem "a" fine);
  check_bool "index is a control dependency" true (List.mem "i" fine)

let suite =
  suite
  @ [
      Alcotest.test_case "slice precision" `Quick test_slice_precision;
      Alcotest.test_case "slice overlap rules" `Quick test_slice_overlap_rules;
      Alcotest.test_case "slice variable index" `Quick
        test_slice_variable_index_conservative;
    ]
