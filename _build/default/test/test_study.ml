(* Tests for the 68-bug study database and the Table 1 aggregation. *)

open Fpga_study

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_totals () =
  check_int "68 bugs studied" 68 Bug_db.total;
  check_int "data mis-access" 28 (Bug_db.count_class Taxonomy.Data_mis_access);
  check_int "communication" 17 (Bug_db.count_class Taxonomy.Communication);
  check_int "semantic" 23 (Bug_db.count_class Taxonomy.Semantic)

(* Table 1's per-subclass counts. *)
let expected_counts =
  [
    (Taxonomy.Buffer_overflow, 5);
    (Taxonomy.Bit_truncation, 12);
    (Taxonomy.Misindexing, 5);
    (Taxonomy.Endianness_mismatch, 1);
    (Taxonomy.Failure_to_update, 5);
    (Taxonomy.Deadlock, 3);
    (Taxonomy.Producer_consumer_mismatch, 3);
    (Taxonomy.Signal_asynchrony, 10);
    (Taxonomy.Use_without_valid, 1);
    (Taxonomy.Protocol_violation, 3);
    (Taxonomy.Api_misuse, 3);
    (Taxonomy.Incomplete_implementation, 7);
    (Taxonomy.Erroneous_expression, 10);
  ]

let test_subclass_counts () =
  List.iter
    (fun (sc, expected) ->
      check_int (Taxonomy.subclass_name sc) expected (Bug_db.count sc))
    expected_counts

let test_table1 () =
  let rows = Bug_db.table1 in
  check_int "13 subclasses" 13 (List.length rows);
  check_int "rows sum to total" Bug_db.total
    (List.fold_left (fun acc r -> acc + r.Bug_db.row_count) 0 rows);
  (* every row's symptoms are the canonical common symptoms *)
  List.iter
    (fun r ->
      check_bool
        (Taxonomy.subclass_name r.Bug_db.row_subclass ^ " symptoms")
        true
        (r.Bug_db.row_symptoms = Taxonomy.common_symptoms r.Bug_db.row_subclass))
    rows

let test_symptom_claims () =
  (* the structural claims the taxonomy discussion makes *)
  check_bool "buffer overflow commonly loses data" true
    (List.mem Taxonomy.Data_loss (Taxonomy.common_symptoms Taxonomy.Buffer_overflow));
  check_bool "deadlock stalls" true
    (List.mem Taxonomy.App_stuck (Taxonomy.common_symptoms Taxonomy.Deadlock));
  check_bool "every subclass has a symptom" true
    (List.for_all
       (fun sc -> Taxonomy.common_symptoms sc <> [])
       Taxonomy.all_subclasses)

let test_testbed_annotations () =
  check_int "20 testbed bugs" 20 (List.length Bug_db.testbed_bugs);
  (* the testbed ids are D1..D13, C1..C4, S1..S3 *)
  let ids =
    List.filter_map (fun b -> b.Bug_db.testbed_id) Bug_db.all
    |> List.sort compare
  in
  let expected =
    List.sort compare
      ([ "C1"; "C2"; "C3"; "C4"; "S1"; "S2"; "S3" ]
      @ List.init 13 (fun i -> Printf.sprintf "D%d" (i + 1)))
  in
  Alcotest.(check (list string)) "testbed ids" expected ids;
  (* testbed entries keep their subclass consistent with Table 2 *)
  match Bug_db.find_by_testbed_id "D1" with
  | Some b ->
      check_bool "D1 is a buffer overflow" true
        (b.Bug_db.subclass = Taxonomy.Buffer_overflow)
  | None -> Alcotest.fail "D1 missing"

let test_unique_ids () =
  let ids = List.map (fun b -> b.Bug_db.id) Bug_db.all in
  check_int "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids))

let suite =
  [
    Alcotest.test_case "totals" `Quick test_totals;
    Alcotest.test_case "subclass counts" `Quick test_subclass_counts;
    Alcotest.test_case "table 1" `Quick test_table1;
    Alcotest.test_case "symptom claims" `Quick test_symptom_claims;
    Alcotest.test_case "testbed annotations" `Quick test_testbed_annotations;
    Alcotest.test_case "unique ids" `Quick test_unique_ids;
  ]

(* --- subclass snippets -------------------------------------------------- *)

(* Each explanatory snippet parses, simulates, and its buggy variant
   diverges from the fixed one on the observed signals. *)
let snippet_tests =
  List.map
    (fun (s : Snippets.t) ->
      Alcotest.test_case
        ("snippet: " ^ Taxonomy.subclass_name s.Snippets.subclass)
        `Quick
        (fun () ->
          let run src =
            let sim = Fpga_sim.Testbench.of_source ~top:s.Snippets.top src in
            List.map
              (fun inputs ->
                List.iter
                  (fun (n, v) -> Fpga_sim.Simulator.set_input_int sim n v)
                  inputs;
                Fpga_sim.Simulator.step sim;
                List.map
                  (fun sig_ -> Fpga_sim.Simulator.read_int sim sig_)
                  s.Snippets.observe)
              s.Snippets.demo_inputs
          in
          let buggy = run s.Snippets.buggy in
          let fixed = run s.Snippets.fixed in
          check_bool
            (Printf.sprintf "%s: buggy and fixed traces diverge" s.Snippets.title)
            true (buggy <> fixed)))
    Snippets.all

let test_snippet_coverage () =
  check_int "one snippet per subclass" (List.length Taxonomy.all_subclasses)
    (List.length Snippets.all);
  List.iter
    (fun sc ->
      check_bool (Taxonomy.subclass_name sc ^ " has a snippet") true
        (Snippets.find sc <> None))
    Taxonomy.all_subclasses

let suite =
  suite
  @ snippet_tests
  @ [ Alcotest.test_case "snippet coverage" `Quick test_snippet_coverage ]

let test_common_fixes () =
  (* every subclass documents a repair, and the testbed's fixed sources
     realize several of them (spot-check the two canonical ones) *)
  List.iter
    (fun sc ->
      check_bool
        (Taxonomy.subclass_name sc ^ " has a fix description")
        true
        (String.length (Taxonomy.common_fix sc) > 10))
    Taxonomy.all_subclasses

let suite =
  suite @ [ Alcotest.test_case "common fixes" `Quick test_common_fixes ]

let test_lint_catches_mechanical_snippets () =
  (* the linter statically flags the mechanical snippet bugs *)
  let lint_rules subclass rule =
    match Snippets.find subclass with
    | None -> []
    | Some s ->
        let m = Fpga_hdl.Parser.parse_module s.Snippets.buggy in
        List.filter
          (fun (f : Fpga_analysis.Lint.finding) -> f.Fpga_analysis.Lint.rule = rule)
          (Fpga_analysis.Lint.check m)
  in
  check_bool "buffer overflow snippet -> overflow-prone" true
    (lint_rules Taxonomy.Buffer_overflow "overflow-prone" <> []);
  (* the truncation snippet casts BEFORE shifting, so its widths agree
     and the lint rule rightly stays silent - the bug is semantic, the
     reason the paper needs dynamic tools at all *)
  check_bool "cast-before-shift is lint-invisible" true
    (lint_rules Taxonomy.Bit_truncation "truncation" = []);
  (* whereas the direct wide-into-narrow shape is caught *)
  let direct =
    Fpga_hdl.Parser.parse_module
      {|
module m (input clk, input [63:0] right, output reg [41:0] left);
  always @(posedge clk) left <= right >> 6;
endmodule
|}
  in
  check_bool "direct truncation flagged" true
    (List.exists
       (fun (f : Fpga_analysis.Lint.finding) ->
         f.Fpga_analysis.Lint.rule = "truncation")
       (Fpga_analysis.Lint.check direct));
  (* and the fixed buffer-overflow snippet (power-of-two buffer) is
     clean for that rule *)
  let fixed_clean =
    match Snippets.find Taxonomy.Buffer_overflow with
    | Some s ->
        let m = Fpga_hdl.Parser.parse_module s.Snippets.fixed in
        List.for_all
          (fun (f : Fpga_analysis.Lint.finding) ->
            f.Fpga_analysis.Lint.rule <> "overflow-prone")
          (Fpga_analysis.Lint.check m)
    | None -> false
  in
  check_bool "fixed snippet clean" true fixed_clean

let suite =
  suite
  @ [
      Alcotest.test_case "lint catches mechanical snippets" `Quick
        test_lint_catches_mechanical_snippets;
    ]
