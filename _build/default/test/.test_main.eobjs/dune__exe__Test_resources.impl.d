test/test_resources.ml: Alcotest Fpga_debug Fpga_hdl Fpga_resources List Model Parser Platforms
