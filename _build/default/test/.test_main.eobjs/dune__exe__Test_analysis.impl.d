test/test_analysis.ml: Alcotest Ast Deps Fpga_analysis Fpga_bits Fpga_hdl Fpga_testbed Fsm_detect Ip_models Lint List Parser Path_constraint Pp_verilog Propagation String Width
