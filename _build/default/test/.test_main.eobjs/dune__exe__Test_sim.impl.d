test/test_sim.ml: Alcotest Array Ast Elaborate Eval Fpga_bits Fpga_hdl Fpga_sim Hashtbl List Option Parser Pp_verilog Printf QCheck2 QCheck_alcotest Simulator String Testbench Vcd Waveform
