test/test_bits.ml: Alcotest Bits Fpga_bits List QCheck2 QCheck_alcotest
