test/test_main.ml: Alcotest Test_analysis Test_bits Test_core Test_hdl Test_report Test_resources Test_sim Test_study Test_testbed
