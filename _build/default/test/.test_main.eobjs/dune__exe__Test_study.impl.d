test/test_study.ml: Alcotest Bug_db Fpga_analysis Fpga_hdl Fpga_sim Fpga_study List Printf Snippets String Taxonomy
