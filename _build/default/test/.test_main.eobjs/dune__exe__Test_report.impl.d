test/test_report.ml: Alcotest Fpga_report Fpga_resources Fpga_testbed List Printf String
