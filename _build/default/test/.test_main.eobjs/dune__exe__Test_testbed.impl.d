test/test_testbed.ml: Alcotest App_grayscale App_rsd App_sdspi Bug Fpga_analysis Fpga_debug Fpga_hdl Fpga_sim Fpga_study Fpga_testbed List Option Printf Registry String
