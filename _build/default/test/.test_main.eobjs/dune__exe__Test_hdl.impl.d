test/test_hdl.ml: Alcotest Ast Builder Fpga_analysis Fpga_bits Fpga_hdl Lexer List Option Parser Pp_verilog Printf QCheck2 QCheck_alcotest String
