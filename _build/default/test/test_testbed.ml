(* Integration tests over the 20-bug testbed: every bug reproduces its
   Table 2 symptoms push-button, the fixed version is clean, and each
   tool marked helpful for a bug actually produces the localizing
   evidence the paper describes (section 6.3). *)

open Fpga_testbed
module Taxonomy = Fpga_study.Taxonomy
module Simulator = Fpga_sim.Simulator

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all = Registry.all

(* --- reproduction ---------------------------------------------------- *)

let reproduction_tests =
  List.map
    (fun (bug : Bug.t) ->
      Alcotest.test_case (bug.Bug.id ^ " reproduces") `Quick (fun () ->
          let observed = Bug.observed_symptoms bug in
          List.iter
            (fun s ->
              check_bool
                (Printf.sprintf "%s shows %s" bug.Bug.id
                   (Taxonomy.symptom_name s))
                true (List.mem s observed))
            bug.Bug.symptoms))
    all

let fixed_clean_tests =
  List.map
    (fun (bug : Bug.t) ->
      Alcotest.test_case (bug.Bug.id ^ " fixed is clean") `Quick (fun () ->
          let fixed = Bug.run bug ~buggy:false in
          check_bool "fixed not stuck" false fixed.Bug.stuck;
          check_bool "fixed no external error" false fixed.Bug.ext_error))
    all

(* --- testbed metadata ------------------------------------------------- *)

let test_registry_shape () =
  check_int "20 bugs" 20 (List.length all);
  check_int "13 data mis-access" 13
    (List.length
       (List.filter
          (fun (b : Bug.t) ->
            Taxonomy.class_of_subclass b.Bug.subclass = Taxonomy.Data_mis_access)
          all));
  check_int "4 communication" 4
    (List.length
       (List.filter
          (fun (b : Bug.t) ->
            Taxonomy.class_of_subclass b.Bug.subclass = Taxonomy.Communication)
          all));
  check_int "3 semantic" 3
    (List.length
       (List.filter
          (fun (b : Bug.t) ->
            Taxonomy.class_of_subclass b.Bug.subclass = Taxonomy.Semantic)
          all));
  (* ids match the study database's testbed annotations *)
  List.iter
    (fun (b : Bug.t) ->
      check_bool
        (Printf.sprintf "%s appears in the study database" b.Bug.id)
        true
        (Fpga_study.Bug_db.find_by_testbed_id b.Bug.id <> None))
    all;
  (* SignalCat is helpful for every bug (section 6.3) *)
  List.iter
    (fun (b : Bug.t) ->
      check_bool (b.Bug.id ^ " uses SignalCat") true
        (List.mem Bug.SC b.Bug.helpful_tools))
    all;
  (* each monitor helps at least four bugs *)
  List.iter
    (fun tool ->
      let n =
        List.length
          (List.filter (fun (b : Bug.t) -> List.mem tool b.Bug.helpful_tools) all)
      in
      check_bool
        (Printf.sprintf "%s helps >= 4 bugs (got %d)" (Bug.tool_name tool) n)
        true (n >= 4))
    [ Bug.FSM; Bug.Stat; Bug.Dep ]

(* --- LossCheck over the loss bugs (section 6.3) ----------------------- *)

let losscheck_tests =
  List.map
    (fun (bug : Bug.t) ->
      Alcotest.test_case (bug.Bug.id ^ " losscheck") `Quick (fun () ->
          let design = Bug.design_of bug ~buggy:true in
          let spec = Option.get bug.Bug.loss_spec in
          let r =
            Fpga_debug.Losscheck.localize ~ground_truth:bug.Bug.ground_truth
              ~max_cycles:bug.Bug.max_cycles ~top:bug.Bug.top ~spec
              ~stimulus:bug.Bug.stimulus design
          in
          (match bug.Bug.loss_root with
          | Some root ->
              check_bool
                (Printf.sprintf "%s localized to %s" bug.Bug.id root)
                true
                (List.mem root r.Fpga_debug.Losscheck.reported)
          | None ->
              (* D11: the paper's false negative - filtering suppresses
                 the alarm *)
              check_bool (bug.Bug.id ^ " reports nothing (false negative)")
                true
                (r.Fpga_debug.Losscheck.reported = []);
              check_bool (bug.Bug.id ^ " alarm was filtered") true
                (r.Fpga_debug.Losscheck.suppressed <> []));
          check_bool "losscheck generated code" true
            (r.Fpga_debug.Losscheck.generated_loc > 0)))
    Registry.loss_bugs

let test_losscheck_d1_false_positive () =
  (* D1 keeps exactly one false positive after filtering (section 6.3) *)
  let bug = App_rsd.bug in
  let design = Bug.design_of bug ~buggy:true in
  let spec = Option.get bug.Bug.loss_spec in
  let r =
    Fpga_debug.Losscheck.localize ~ground_truth:bug.Bug.ground_truth
      ~max_cycles:bug.Bug.max_cycles ~top:bug.Bug.top ~spec
      ~stimulus:bug.Bug.stimulus design
  in
  Alcotest.(check (list string))
    "true root + one false positive" [ "codeword"; "in_reg" ]
    (List.sort String.compare r.Fpga_debug.Losscheck.reported)

let test_losscheck_summary () =
  (* 6 of 7 loss bugs localize, as in section 6.3 *)
  let localized =
    List.filter (fun (b : Bug.t) -> b.Bug.loss_root <> None) Registry.loss_bugs
  in
  check_int "7 loss bugs evaluated" 7 (List.length Registry.loss_bugs);
  check_int "6 localized" 6 (List.length localized)

(* --- FSM detection accuracy (section 4.2) ----------------------------- *)

let test_fsm_accuracy () =
  let detected_total = ref 0 in
  let manual_total = ref 0 in
  let false_positives = ref [] in
  let false_negatives = ref [] in
  List.iter
    (fun (bug : Bug.t) ->
      let design = Bug.design_of bug ~buggy:true in
      let m = Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top) in
      let detected =
        List.map
          (fun f -> f.Fpga_analysis.Fsm_detect.state_var)
          (Fpga_analysis.Fsm_detect.detect m)
      in
      detected_total := !detected_total + List.length detected;
      manual_total := !manual_total + List.length bug.Bug.manual_fsms;
      List.iter
        (fun v ->
          if not (List.mem v bug.Bug.manual_fsms) then
            false_positives := (bug.Bug.id, v) :: !false_positives)
        detected;
      List.iter
        (fun v ->
          if not (List.mem v detected) then
            false_negatives := (bug.Bug.id, v) :: !false_negatives)
        bug.Bug.manual_fsms)
    all;
  check_int "no false positives" 0 (List.length !false_positives);
  check_int "two deliberate false negatives" 2 (List.length !false_negatives);
  check_int "manual census" 17 !manual_total;
  check_int "detected census" 15 !detected_total

(* --- FSM Monitor finds the stuck state (grayscale case study) --------- *)

let test_fsm_monitor_case_study () =
  let bug = App_grayscale.bug in
  let design = Bug.design_of bug ~buggy:true in
  let m = Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top) in
  let plan = Fpga_debug.Fsm_monitor.plan m in
  let instrumented = Fpga_debug.Fsm_monitor.instrument plan m in
  let design' = { Fpga_hdl.Ast.modules = [ instrumented ] } in
  let report = Bug.run_design bug design' in
  let finals = Fpga_debug.Fsm_monitor.final_states plan report.Bug.log in
  (* the read FSM finished, the write FSM is stuck mid-transfer *)
  Alcotest.(check (option string))
    "read FSM reached RD_FINISH" (Some "RD_FINISH")
    (List.assoc_opt "rd_state" finals);
  Alcotest.(check (option string))
    "write FSM stuck in WR_DATA" (Some "WR_DATA")
    (List.assoc_opt "wr_state" finals)

(* --- Statistics Monitor flags the loss bugs --------------------------- *)

let stat_anomaly_bugs = [ "D2"; "D4"; "D11"; "C2"; "C4" ]

let stat_tests =
  List.map
    (fun id ->
      Alcotest.test_case (id ^ " statistics anomaly") `Quick (fun () ->
          let bug = Option.get (Registry.find id) in
          let design = Bug.design_of bug ~buggy:true in
          let m = Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top) in
          let events =
            List.map
              (fun (name, signal) ->
                {
                  Fpga_debug.Stat_monitor.event_name = name;
                  trigger = Fpga_hdl.Ast.Ident signal;
                })
              bug.Bug.stat_events
          in
          let plan = Fpga_debug.Stat_monitor.plan m events in
          let instrumented = Fpga_debug.Stat_monitor.instrument plan m in
          let design' = { Fpga_hdl.Ast.modules = [ instrumented ] } in
          let sim = Fpga_sim.Testbench.of_design ~top:bug.Bug.top design' in
          let _ =
            Fpga_sim.Testbench.run ~max_cycles:bug.Bug.max_cycles sim
              bug.Bug.stimulus
          in
          let counts = Fpga_debug.Stat_monitor.counts plan sim in
          (* total produced across input events vs. the output event *)
          let consumer =
            fst (List.nth bug.Bug.stat_events (List.length bug.Bug.stat_events - 1))
          in
          let produced =
            List.fold_left
              (fun acc (name, n) -> if name = consumer then acc else acc + n)
              0 counts
          in
          let consumed = List.assoc consumer counts in
          check_bool
            (Printf.sprintf "produced %d > consumed %d" produced consumed)
            true (produced > consumed)))
    stat_anomaly_bugs

(* --- Dependency Monitor: the chain reaches the buggy logic ------------ *)

let dep_tests =
  List.filter_map
    (fun (bug : Bug.t) ->
      match bug.Bug.dep_target with
      | Some target when List.mem Bug.Dep bug.Bug.helpful_tools ->
          Some
            (Alcotest.test_case (bug.Bug.id ^ " dependency chain") `Quick
               (fun () ->
                 let design = Bug.design_of bug ~buggy:true in
                 let m =
                   Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top)
                 in
                 let plan =
                   Fpga_debug.Dep_monitor.analyze ~design ~target ~cycles:8 m
                 in
                 let changed = Bug.changed_signals bug in
                 Alcotest.(check bool)
                   (Printf.sprintf
                      "chain of %s contains a signal the fix touches (%s)"
                      target
                      (String.concat "," changed))
                   true
                   (List.exists
                      (fun c -> List.mem c plan.Fpga_debug.Dep_monitor.chain)
                      changed)))
      | _ -> None)
    all

(* --- Deadlock: the circular control dependency is found --------------- *)

let test_deadlock_cycle () =
  let bug = App_sdspi.c1 in
  let design = Bug.design_of bug ~buggy:true in
  let m = Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top) in
  let g = Fpga_analysis.Deps.of_module m in
  let cycles = Fpga_analysis.Deps.control_cycles g in
  check_bool "a circular control dependency exists" true (cycles <> []);
  check_bool "cmd_active and data_idle are in a cycle" true
    (List.exists
       (fun c -> List.mem "cmd_active" c && List.mem "data_idle" c)
       cycles)

(* --- SignalCat unification across the testbed ------------------------- *)

let signalcat_tests =
  (* instrument each buggy design with FSM-monitor displays and check
     that simulation and on-FPGA logs agree *)
  List.filter_map
    (fun (bug : Bug.t) ->
      if bug.Bug.manual_fsms = [] then None
      else
        Some
          (Alcotest.test_case (bug.Bug.id ^ " signalcat unification") `Quick
             (fun () ->
               let design = Bug.design_of bug ~buggy:true in
               let m =
                 Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top)
               in
               let plan = Fpga_debug.Fsm_monitor.plan m in
               let instrumented = Fpga_debug.Fsm_monitor.instrument plan m in
               let design' =
                 {
                   Fpga_hdl.Ast.modules =
                     List.map
                       (fun x -> if x == m then instrumented else x)
                       design.Fpga_hdl.Ast.modules;
                 }
               in
               let log mode =
                 Fpga_debug.Signalcat.run_and_log ~buffer_depth:1024
                   ~max_cycles:bug.Bug.max_cycles ~mode ~top:bug.Bug.top
                   design' bug.Bug.stimulus
               in
               let sim_log = log Fpga_debug.Signalcat.Simulation in
               let fpga_log = log Fpga_debug.Signalcat.On_fpga in
               Alcotest.(check (list (pair int string)))
                 "simulation and on-FPGA logs agree" sim_log fpga_log)))
    all

let suite =
  reproduction_tests @ fixed_clean_tests
  @ [
      Alcotest.test_case "registry shape" `Quick test_registry_shape;
      Alcotest.test_case "losscheck D1 false positive" `Quick
        test_losscheck_d1_false_positive;
      Alcotest.test_case "losscheck summary" `Quick test_losscheck_summary;
      Alcotest.test_case "fsm detection accuracy" `Quick test_fsm_accuracy;
      Alcotest.test_case "fsm monitor case study" `Quick
        test_fsm_monitor_case_study;
      Alcotest.test_case "deadlock control cycle" `Quick test_deadlock_cycle;
    ]
  @ losscheck_tests @ stat_tests @ dep_tests @ signalcat_tests

(* --- extended testbed (beyond Table 2) --------------------------------- *)

let extended_tests =
  List.map
    (fun (bug : Bug.t) ->
      Alcotest.test_case (bug.Bug.id ^ " (extended) reproduces") `Quick
        (fun () ->
          let observed = Bug.observed_symptoms bug in
          List.iter
            (fun s ->
              check_bool
                (Printf.sprintf "%s shows %s" bug.Bug.id
                   (Taxonomy.symptom_name s))
                true (List.mem s observed))
            bug.Bug.symptoms;
          let fixed = Bug.run bug ~buggy:false in
          check_bool "fixed not stuck" false fixed.Bug.stuck))
    Registry.extended

let test_subclass_coverage () =
  (* with the extended set, every subclass of the taxonomy has at least
     one push-button reproduction *)
  let covered =
    List.map (fun (b : Bug.t) -> b.Bug.subclass) Registry.all_with_extended
  in
  List.iter
    (fun sc ->
      check_bool
        (Taxonomy.subclass_name sc ^ " covered")
        true (List.mem sc covered))
    Taxonomy.all_subclasses

let suite =
  suite @ extended_tests
  @ [ Alcotest.test_case "all subclasses covered" `Quick test_subclass_coverage ]

(* --- instrumentation is non-invasive ------------------------------------ *)

(* The full debug recipe (monitors + recording logic) must not change
   the design's observable behaviour: the instrumented buggy design
   produces exactly the rows the bare buggy design does. *)
let noninvasive_tests =
  List.map
    (fun id ->
      Alcotest.test_case (id ^ " instrumentation non-invasive") `Quick
        (fun () ->
          let bug = Option.get (Registry.find id) in
          let bare = Bug.run bug ~buggy:true in
          let r = Fpga_testbed.Recipe.apply ~buffer_depth:1024 bug in
          let design = Bug.design_of bug ~buggy:true in
          let design' =
            {
              Fpga_hdl.Ast.modules =
                List.map
                  (fun m ->
                    if m.Fpga_hdl.Ast.mod_name = bug.Bug.top then
                      r.Fpga_testbed.Recipe.on_fpga
                    else m)
                  design.Fpga_hdl.Ast.modules;
            }
          in
          let instrumented = Bug.run_design bug design' in
          Alcotest.(check bool)
            "same stuck verdict" bare.Bug.stuck instrumented.Bug.stuck;
          Alcotest.(check bool)
            "same output rows" true
            (List.map snd bare.Bug.rows = List.map snd instrumented.Bug.rows)))
    [ "D1"; "D2"; "D4"; "D9"; "C1"; "C4"; "S3" ]

(* --- every testbed source parses, prints, and reparses ------------------- *)

let roundtrip_tests =
  List.map
    (fun (bug : Bug.t) ->
      Alcotest.test_case (bug.Bug.id ^ " source roundtrip") `Quick (fun () ->
          List.iter
            (fun src ->
              let d1 = Fpga_hdl.Parser.parse_design src in
              let printed = Fpga_hdl.Pp_verilog.design_to_string d1 in
              let d2 = Fpga_hdl.Parser.parse_design printed in
              Alcotest.(check bool)
                (bug.Bug.id ^ " print/parse stable") true (d1 = d2))
            [ bug.Bug.buggy_src; bug.Bug.fixed_src ]))
    Registry.all_with_extended

(* --- elaboration error reporting ----------------------------------------- *)

let test_elaboration_errors () =
  let elaborates src top =
    match
      Fpga_sim.Elaborate.elaborate (Fpga_hdl.Parser.parse_design src) ~top
    with
    | exception Fpga_sim.Elaborate.Elaboration_error _ -> false
    | _ -> true
  in
  check_bool "unknown top rejected" false
    (elaborates "module m (input a); endmodule" "ghost");
  check_bool "unknown child module rejected" false
    (elaborates
       "module top (input clk); mystery u0 (.x(clk)); endmodule" "top");
  check_bool "unknown parameter override rejected" false
    (elaborates
       {|
module child #(parameter N = 1) (input clk);
endmodule
module top (input clk);
  child #(.GHOST(3)) u0 (.clk(clk));
endmodule
|}
       "top");
  check_bool "unknown port rejected" false
    (elaborates
       {|
module child (input clk);
endmodule
module top (input clk);
  child u0 (.nonexistent(clk));
endmodule
|}
       "top")

let suite =
  suite @ noninvasive_tests @ roundtrip_tests
  @ [ Alcotest.test_case "elaboration errors" `Quick test_elaboration_errors ]

(* --- Dependency Monitor over the extended bugs --------------------------- *)

let extended_dep_tests =
  List.filter_map
    (fun (bug : Bug.t) ->
      match bug.Bug.dep_target with
      | Some target when List.mem Bug.Dep bug.Bug.helpful_tools ->
          Some
            (Alcotest.test_case
               (bug.Bug.id ^ " (extended) dependency chain")
               `Quick
               (fun () ->
                 let design = Bug.design_of bug ~buggy:true in
                 let m =
                   Option.get (Fpga_hdl.Ast.find_module design bug.Bug.top)
                 in
                 let plan =
                   Fpga_debug.Dep_monitor.analyze ~design ~target ~cycles:8 m
                 in
                 let changed = Bug.changed_signals bug in
                 Alcotest.(check bool)
                   (Printf.sprintf "chain reaches the fix (%s)"
                      (String.concat "," changed))
                   true
                   (List.exists
                      (fun c -> List.mem c plan.Fpga_debug.Dep_monitor.chain)
                      changed)))
      | _ -> None)
    Registry.extended

let suite = suite @ extended_dep_tests
