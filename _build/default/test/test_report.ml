(* Smoke tests for the evaluation-report printers: every section runs
   without raising and the headline invariants of the evaluation hold
   when computed the same way the report computes them. *)

module Report = Fpga_report.Report
module Bug = Fpga_testbed.Bug
module Registry = Fpga_testbed.Registry
module Recipe = Fpga_testbed.Recipe
module Model = Fpga_resources.Model

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_sections_run () =
  (* the printers write to stdout (captured by alcotest); the test is
     that none of them raises *)
  Report.table1 ();
  Report.extended_testbed ();
  Report.figure3 ();
  Report.frequency ()

let test_frequency_headline () =
  let kept, dropped =
    List.partition
      (fun (bug : Bug.t) ->
        let _, after = Recipe.timing ~buffer_depth:8192 bug in
        after.Model.meets_target)
      Registry.all
  in
  check_int "18 keep their target" 18 (List.length kept);
  Alcotest.(check (list string))
    "the two Optimus bugs drop" [ "C2"; "D3" ]
    (List.sort String.compare (List.map (fun (b : Bug.t) -> b.Bug.id) dropped));
  List.iter
    (fun (bug : Bug.t) ->
      let _, after = Recipe.timing ~buffer_depth:8192 bug in
      check_int (bug.Bug.id ^ " reduced to 200 MHz") 200 after.Model.achieved_mhz)
    dropped

let test_figure2_trends () =
  (* the Figure 2 invariants, checked for every bug rather than eyeballed *)
  List.iter
    (fun (bug : Bug.t) ->
      let u1 = Recipe.overhead ~buffer_depth:1024 bug in
      let u8 = Recipe.overhead ~buffer_depth:8192 bug in
      check_bool (bug.Bug.id ^ " bram overhead positive") true
        (u1.Model.bram_bits > 0);
      check_int
        (bug.Bug.id ^ " bram scales exactly 8x")
        (8 * u1.Model.bram_bits) u8.Model.bram_bits;
      check_bool (bug.Bug.id ^ " registers nearly flat") true
        (abs (u8.Model.registers - u1.Model.registers) <= 4))
    Registry.all

let test_generated_loc_average () =
  let locs =
    List.map
      (fun bug ->
        let r = Recipe.apply ~buffer_depth:8192 bug in
        r.Recipe.monitor_loc + r.Recipe.recording_loc)
      Registry.all
  in
  let avg = List.fold_left ( + ) 0 locs / List.length locs in
  check_bool
    (Printf.sprintf "average generated LoC (%d) near the paper's 72" avg)
    true
    (avg >= 50 && avg <= 100)

let suite =
  [
    Alcotest.test_case "report sections run" `Quick test_sections_run;
    Alcotest.test_case "frequency headline" `Quick test_frequency_headline;
    Alcotest.test_case "figure 2 trends" `Quick test_figure2_trends;
    Alcotest.test_case "generated loc average" `Quick test_generated_loc_average;
  ]
