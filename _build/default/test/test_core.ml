(* Unit tests for the five debugging tools (lib/core), including the
   paper's running examples and SignalCat's simulation/on-FPGA log
   equivalence property. *)

open Fpga_hdl
open Fpga_debug
module Bits = Fpga_bits.Bits
module Simulator = Fpga_sim.Simulator
module Testbench = Fpga_sim.Testbench

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let b = Bits.of_int

(* --- SignalCat --------------------------------------------------------- *)

let traced_counter =
  {|
module top (input clk, input enable, output reg [7:0] n);
  always @(posedge clk) begin
    if (enable) begin
      n <= n + 8'd1;
      if (n[1:0] == 2'd3) $display("n about to wrap nibble: %d", n);
      if (n == 8'd5) $display("five seen (hex %h)", n);
    end
  end
endmodule
|}

let toggle_stimulus cycle = [ ("enable", b ~width:1 (if cycle mod 3 = 2 then 0 else 1)) ]

let test_signalcat_analyze () =
  let m = Parser.parse_module traced_counter in
  let plan = Signalcat.analyze ~buffer_depth:1024 m in
  check_int "two statements" 2 (List.length plan.Signalcat.statements);
  (* entry = 32-bit cycle + 2 constraint bits + two 8-bit arguments *)
  check_int "entry width" (32 + 2 + 16) plan.Signalcat.entry_width;
  check_bool "instrumentation adds code" true
    (Signalcat.generated_loc plan m > 0)

let test_signalcat_equivalence () =
  let design = Parser.parse_design traced_counter in
  let log mode =
    Signalcat.run_and_log ~buffer_depth:1024 ~max_cycles:40 ~mode ~top:"top"
      design toggle_stimulus
  in
  let sim_log = log Signalcat.Simulation in
  let fpga_log = log Signalcat.On_fpga in
  check_bool "log not empty" true (sim_log <> []);
  Alcotest.(check (list (pair int string))) "unified logs" sim_log fpga_log

let test_signalcat_ring_buffer () =
  (* when the trace overflows the buffer, the reconstruction keeps the
     most recent entries, like a SignalTap ring *)
  let design = Parser.parse_design traced_counter in
  let sim_log =
    Signalcat.run_and_log ~buffer_depth:1024 ~max_cycles:200 ~mode:Signalcat.Simulation
      ~top:"top" design toggle_stimulus
  in
  let fpga_log =
    Signalcat.run_and_log ~buffer_depth:8 ~max_cycles:200 ~mode:Signalcat.On_fpga
      ~top:"top" design toggle_stimulus
  in
  check_bool "overflowed" true (List.length sim_log > List.length fpga_log);
  let tail n l =
    let len = List.length l in
    List.filteri (fun i _ -> i >= len - n) l
  in
  (* entries are per-cycle; the suffix of the unified log must match *)
  Alcotest.(check (list (pair int string)))
    "ring keeps the newest entries"
    (tail (List.length fpga_log) sim_log)
    fpga_log

let test_signalcat_rejects_bad_depth () =
  let m = Parser.parse_module traced_counter in
  check_bool "non power of two rejected" true
    (match Signalcat.analyze ~buffer_depth:1000 m with
    | exception Instrument.Instrument_error _ -> true
    | _ -> false)

(* Property: for random stimulus, simulation and on-FPGA logs agree. *)
let prop_signalcat_unified =
  QCheck2.Test.make ~count:30 ~name:"signalcat unifies sim and fpga logs"
    QCheck2.Gen.(list_size (return 30) bool)
    (fun enables ->
      let design = Parser.parse_design traced_counter in
      let stim cycle =
        [ ("enable", b ~width:1 (if List.nth enables (cycle mod 30) then 1 else 0)) ]
      in
      let log mode =
        Signalcat.run_and_log ~buffer_depth:1024 ~max_cycles:30 ~mode
          ~top:"top" design stim
      in
      log Signalcat.Simulation = log Signalcat.On_fpga)

(* --- FSM Monitor -------------------------------------------------------- *)

let fsm_design =
  {|
module top (input clk, input request_valid, input work_done, output [1:0] so);
  localparam IDLE = 2'd0;
  localparam WORK = 2'd1;
  localparam FINISH = 2'd2;
  reg [1:0] state;
  assign so = state;
  always @(posedge clk) begin
    case (state)
      IDLE: if (request_valid) state <= WORK;
      WORK: if (work_done) state <= FINISH;
      FINISH: state <= IDLE;
    endcase
  end
endmodule
|}

let test_fsm_monitor_trace () =
  let design = Parser.parse_design fsm_design in
  let m = Option.get (Ast.find_module design "top") in
  let plan = Fsm_monitor.plan m in
  check_int "one FSM" 1 (List.length plan.Fsm_monitor.fsms);
  let instrumented = Fsm_monitor.instrument plan m in
  let sim =
    Testbench.of_design ~top:"top" { Ast.modules = [ instrumented ] }
  in
  let stim cycle =
    [
      ("request_valid", b ~width:1 (if cycle = 1 then 1 else 0));
      ("work_done", b ~width:1 (if cycle = 4 then 1 else 0));
    ]
  in
  let outcome = Testbench.run ~max_cycles:10 sim stim in
  let transitions = Fsm_monitor.transitions plan outcome.Testbench.log in
  let names =
    List.map
      (fun t -> (t.Fsm_monitor.from_name, t.Fsm_monitor.to_name))
      transitions
  in
  Alcotest.(check (list (pair string string)))
    "trace IDLE->WORK->FINISH->IDLE"
    [ ("IDLE", "WORK"); ("WORK", "FINISH"); ("FINISH", "IDLE") ]
    names

let test_fsm_monitor_extra_exclude () =
  let design = Parser.parse_design fsm_design in
  let m = Option.get (Ast.find_module design "top") in
  let excluded = Fsm_monitor.plan ~exclude:[ "state" ] m in
  check_int "excluded" 0 (List.length excluded.Fsm_monitor.fsms);
  let forced = Fsm_monitor.plan ~extra:[ "state" ] m in
  check_int "extra does not duplicate" 1 (List.length forced.Fsm_monitor.fsms)

(* --- Statistics Monitor -------------------------------------------------- *)

let test_stat_monitor_counts () =
  let m =
    Parser.parse_module
      {|
module top (input clk, input a_ev, input b_ev, output reg [7:0] dummy);
  always @(posedge clk) dummy <= dummy + 8'd1;
endmodule
|}
  in
  let events =
    [
      { Stat_monitor.event_name = "a"; trigger = Ast.Ident "a_ev" };
      { Stat_monitor.event_name = "b"; trigger = Ast.Ident "b_ev" };
    ]
  in
  let plan = Stat_monitor.plan m events in
  let instrumented = Stat_monitor.instrument plan m in
  let sim = Testbench.of_design ~top:"top" { Ast.modules = [ instrumented ] } in
  let stim cycle =
    [
      ("a_ev", b ~width:1 (if cycle mod 2 = 0 then 1 else 0));
      ("b_ev", b ~width:1 (if cycle mod 5 = 0 then 1 else 0));
    ]
  in
  let _ = Testbench.run ~max_cycles:20 sim stim in
  let counts = Stat_monitor.counts plan sim in
  check_int "a count" 10 (List.assoc "a" counts);
  check_int "b count" 4 (List.assoc "b" counts);
  match Stat_monitor.check_balance counts ~producer:"a" ~consumer:"b" with
  | Some anomaly ->
      check_int "lost" 6
        (anomaly.Stat_monitor.produced - anomaly.Stat_monitor.consumed)
  | None -> Alcotest.fail "expected anomaly"

let test_stat_monitor_unknown_signal () =
  let m = Parser.parse_module "module top (input clk); endmodule" in
  check_bool "unknown signal rejected" true
    (match
       Stat_monitor.plan m
         [ { Stat_monitor.event_name = "x"; trigger = Ast.Ident "ghost" } ]
     with
    | exception Instrument.Instrument_error _ -> true
    | _ -> false)

(* --- Dependency Monitor --------------------------------------------------- *)

let test_dep_monitor_updates () =
  let m =
    Parser.parse_module
      {|
module top (input clk, input [7:0] d, input en, output [7:0] q);
  reg [7:0] s1, s2;
  assign q = s2;
  always @(posedge clk) begin
    if (en) s1 <= d;
    s2 <= s1;
  end
endmodule
|}
  in
  let plan = Dep_monitor.analyze ~target:"s2" ~cycles:4 m in
  check_bool "chain has s1" true (List.mem "s1" plan.Dep_monitor.chain);
  check_bool "chain has d" true (List.mem "d" plan.Dep_monitor.chain);
  let instrumented = Dep_monitor.instrument plan m in
  let sim = Testbench.of_design ~top:"top" { Ast.modules = [ instrumented ] } in
  let stim cycle =
    [
      ("en", b ~width:1 (if cycle = 2 then 1 else 0));
      ("d", b ~width:8 0x7E);
    ]
  in
  let outcome = Testbench.run ~max_cycles:8 sim stim in
  let updates = Dep_monitor.updates plan outcome.Testbench.log in
  check_bool "s1 update observed" true
    (List.exists
       (fun u -> u.Dep_monitor.signal = "s1" && u.Dep_monitor.value = 0x7E)
       updates);
  check_bool "s2 update observed" true
    (List.exists
       (fun u -> u.Dep_monitor.signal = "s2" && u.Dep_monitor.value = 0x7E)
       updates);
  (* backtrace returns newest first *)
  let bt = Dep_monitor.backtrace plan outcome.Testbench.log ~at_cycle:6 in
  check_bool "backtrace ordered" true
    (match bt with
    | a :: c :: _ -> a.Dep_monitor.cycle >= c.Dep_monitor.cycle
    | _ -> false)

(* --- LossCheck on the paper's running example ----------------------------- *)

(* Section 4.5.1: out <= a / b under conditions; b <= in when valid.
   If cond_b never fires while new valid data arrives, b's value is
   overwritten - LossCheck must flag b. *)
let losscheck_example =
  {|
module ex (input clk, input cond_a, input cond_b, input in_valid,
           input [7:0] in, input [7:0] a, output reg [7:0] out);
  reg [7:0] b;
  always @(posedge clk) begin
    if (cond_a) out <= a;
    else if (cond_b) out <= b;
    if (in_valid) b <= in;
  end
endmodule
|}

let test_losscheck_paper_example () =
  let design = Parser.parse_design losscheck_example in
  let spec =
    { Losscheck.source = "in"; valid = Ast.Ident "in_valid"; sink = "out" }
  in
  (* two valid inputs while cond_b stays low: the first value in b is
     overwritten without propagating *)
  let lossy_stim cycle =
    [
      ("cond_a", b ~width:1 0);
      ("cond_b", b ~width:1 0);
      ("in_valid", b ~width:1 (if cycle = 2 || cycle = 6 then 1 else 0));
      ("in", b ~width:8 (0x10 + cycle));
    ]
  in
  let r =
    Losscheck.localize ~max_cycles:12 ~top:"ex" ~spec ~stimulus:lossy_stim
      design
  in
  Alcotest.(check (list string)) "b is flagged" [ "b" ] r.Losscheck.reported;
  (* and when every value is drained before the next arrives, silence *)
  let clean_stim cycle =
    [
      ("cond_a", b ~width:1 0);
      ("cond_b", b ~width:1 (if cycle = 4 || cycle = 9 then 1 else 0));
      ("in_valid", b ~width:1 (if cycle = 2 || cycle = 7 then 1 else 0));
      ("in", b ~width:8 (0x10 + cycle));
    ]
  in
  let r2 =
    Losscheck.localize ~max_cycles:14 ~top:"ex" ~spec ~stimulus:clean_stim
      design
  in
  Alcotest.(check (list string)) "no alarms" [] r2.Losscheck.reported

let test_losscheck_shadow_structure () =
  (* the instrumentation adds the A/V/P/N shadow registers of 4.5.2 *)
  let design = Parser.parse_design losscheck_example in
  let m = Option.get (Ast.find_module design "ex") in
  let spec =
    { Losscheck.source = "in"; valid = Ast.Ident "in_valid"; sink = "out" }
  in
  let plan = Losscheck.analyze spec m in
  Alcotest.(check (list string)) "b is the only check" [ "b" ]
    plan.Losscheck.scalar_checks;
  let instrumented = Losscheck.instrument plan m in
  List.iter
    (fun name ->
      check_bool (name ^ " exists") true (Ast.find_decl instrumented name <> None))
    [ "_lc_a_b"; "_lc_v_b"; "_lc_p_b"; "_lc_n_b" ]

(* Property: LossCheck never alarms on a loss-free random pipeline, and
   always alarms when the drain is disconnected. *)
let prop_losscheck_soundness =
  QCheck2.Test.make ~count:25 ~name:"losscheck pipeline soundness"
    QCheck2.Gen.(int_range 1 6)
    (fun gap ->
      let design =
        Parser.parse_design
          {|
module p (input clk, input in_valid, input [7:0] in, input drain,
          output reg [7:0] out);
  reg [7:0] hold;
  always @(posedge clk) begin
    if (in_valid) hold <= in;
    if (drain) out <= hold;
  end
endmodule
|}
      in
      let spec =
        { Losscheck.source = "in"; valid = Ast.Ident "in_valid"; sink = "out" }
      in
      (* values arrive every (gap+2) cycles and drain one cycle later:
         loss-free *)
      let clean cycle =
        [
          ("in_valid", b ~width:1 (if cycle mod (gap + 2) = 0 then 1 else 0));
          ("drain", b ~width:1 (if cycle mod (gap + 2) = 1 then 1 else 0));
          ("in", b ~width:8 (cycle land 0xFF));
        ]
      in
      let no_drain cycle =
        [
          ("in_valid", b ~width:1 (if cycle mod (gap + 2) = 0 then 1 else 0));
          ("drain", b ~width:1 0);
          ("in", b ~width:8 (cycle land 0xFF));
        ]
      in
      let run stim =
        (Losscheck.localize ~max_cycles:30 ~top:"p" ~spec ~stimulus:stim design)
          .Losscheck.reported
      in
      run clean = [] && run no_drain = [ "hold" ])

let suite =
  [
    Alcotest.test_case "signalcat analyze" `Quick test_signalcat_analyze;
    Alcotest.test_case "signalcat equivalence" `Quick test_signalcat_equivalence;
    Alcotest.test_case "signalcat ring buffer" `Quick test_signalcat_ring_buffer;
    Alcotest.test_case "signalcat rejects bad depth" `Quick
      test_signalcat_rejects_bad_depth;
    Alcotest.test_case "fsm monitor trace" `Quick test_fsm_monitor_trace;
    Alcotest.test_case "fsm monitor extra/exclude" `Quick
      test_fsm_monitor_extra_exclude;
    Alcotest.test_case "stat monitor counts" `Quick test_stat_monitor_counts;
    Alcotest.test_case "stat monitor unknown signal" `Quick
      test_stat_monitor_unknown_signal;
    Alcotest.test_case "dep monitor updates" `Quick test_dep_monitor_updates;
    Alcotest.test_case "losscheck paper example" `Quick
      test_losscheck_paper_example;
    Alcotest.test_case "losscheck shadow structure" `Quick
      test_losscheck_shadow_structure;
    QCheck_alcotest.to_alcotest prop_signalcat_unified;
    QCheck_alcotest.to_alcotest prop_losscheck_soundness;
  ]

(* --- LossCheck through user-module hierarchy ---------------------------- *)

let test_losscheck_through_user_instance () =
  (* data flows through a user submodule and an scfifo before reaching
     the overwritten register; the analysis must trace through both *)
  let design =
    Parser.parse_design
      {|
module double (input [7:0] x, output [7:0] y);
  assign y = {x[6:0], 1'b0};
endmodule

module top (input clk, input reset, input in_valid, input [7:0] din,
            input drain, output reg [7:0] out);
  wire [7:0] doubled;
  wire [7:0] q;
  wire empty;
  double u_d (.x(din), .y(doubled));
  scfifo #(.lpm_width(8), .lpm_numwords(4)) u_q (
    .clock(clk), .data(doubled), .wrreq(in_valid), .rdreq(pop),
    .q(q), .empty(empty));
  wire pop;
  reg [7:0] hold;
  assign pop = !empty;
  always @(posedge clk) begin
    if (pop) hold <= q;
    if (drain) out <= hold;
  end
endmodule
|}
  in
  let spec =
    { Losscheck.source = "din"; valid = Ast.Ident "in_valid"; sink = "out" }
  in
  let stim cycle =
    [
      ("reset", b ~width:1 0);
      ("in_valid", b ~width:1 (if cycle >= 2 && cycle < 6 then 1 else 0));
      ("din", b ~width:8 (0x10 + cycle));
      ("drain", b ~width:1 0);
    ]
  in
  let r = Losscheck.localize ~max_cycles:20 ~top:"top" ~spec ~stimulus:stim design in
  Alcotest.(check (list string))
    "hold flagged through submodule and fifo" [ "hold" ]
    r.Losscheck.reported

let suite =
  suite
  @ [
      Alcotest.test_case "losscheck through user instance" `Quick
        test_losscheck_through_user_instance;
    ]

(* --- SignalCat trigger window -------------------------------------------- *)

let test_signalcat_trigger_window () =
  (* recording armed while 3 <= n < 10: the reconstructed log is the
     simulation log restricted to that window *)
  let design = Parser.parse_design traced_counter in
  let trigger =
    {
      Signalcat.start =
        Some (Ast.Binop (Ast.Eq, Ast.Ident "n", Builder.const ~width:8 3));
      stop =
        Some (Ast.Binop (Ast.Eq, Ast.Ident "n", Builder.const ~width:8 10));
      post = 0;
    }
  in
  let always_on cycle = ignore cycle; [ ("enable", b ~width:1 1) ] in
  let sim_log =
    Signalcat.run_and_log ~buffer_depth:1024 ~max_cycles:40
      ~mode:Signalcat.Simulation ~top:"top" design always_on
  in
  let windowed =
    Signalcat.run_and_log ~buffer_depth:1024 ~trigger ~max_cycles:40
      ~mode:Signalcat.On_fpga ~top:"top" design always_on
  in
  check_bool "window log nonempty" true (windowed <> []);
  check_bool "window is a strict subset" true
    (List.length windowed < List.length sim_log);
  List.iter
    (fun entry ->
      check_bool "window entries come from the full log" true
        (List.mem entry sim_log))
    windowed;
  (* the counter hits 3 at cycle 3 and 10 at cycle 10: every captured
     entry falls inside [3, 10) *)
  List.iter
    (fun (cycle, _) ->
      check_bool
        (Printf.sprintf "cycle %d within the trigger window" cycle)
        true
        (cycle >= 3 && cycle < 10))
    windowed;
  (* without a trigger the behaviour is unchanged *)
  let untriggered =
    Signalcat.run_and_log ~buffer_depth:1024 ~max_cycles:40
      ~mode:Signalcat.On_fpga ~top:"top" design always_on
  in
  Alcotest.(check (list (pair int string))) "no trigger = full log" sim_log
    untriggered

let test_signalcat_post_trigger () =
  (* with a post-trigger budget the ring keeps events after the stop
     event: n reaches 10 at cycle 10, and the multiples-of-five display
     at cycle 14 (n=14 -> 15) is still captured before the freeze *)
  let design = Parser.parse_design traced_counter in
  let always_on cycle = ignore cycle; [ ("enable", b ~width:1 1) ] in
  let log post =
    Signalcat.run_and_log ~buffer_depth:1024
      ~trigger:
        {
          Signalcat.start = None;
          stop =
            Some (Ast.Binop (Ast.Eq, Ast.Ident "n", Builder.const ~width:8 10));
          post;
        }
      ~max_cycles:60 ~mode:Signalcat.On_fpga ~top:"top" design always_on
  in
  let frozen = log 0 and extended = log 8 in
  check_bool "post window captures more" true
    (List.length extended > List.length frozen);
  check_bool "post window still freezes eventually" true
    (List.length extended
    < List.length
        (Signalcat.run_and_log ~buffer_depth:1024 ~max_cycles:60
           ~mode:Signalcat.On_fpga ~top:"top" design always_on))

let suite =
  suite
  @ [
      Alcotest.test_case "signalcat trigger window" `Quick
        test_signalcat_trigger_window;
      Alcotest.test_case "signalcat post trigger" `Quick
        test_signalcat_post_trigger;
    ]

(* --- randomized pipeline: Stat localizes the stage, LossCheck the
   register ----------------------------------------------------------- *)

(* Build an n-stage valid/data pipeline; stage [sabotage] (1-based, if
   any) drops its valid hand-off, so data piles up in the register
   before it and is overwritten. *)
let pipeline_src ~stages ~sabotage =
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    "module pipe (input clk, input in_valid, input [7:0] in_data,\n";
  Buffer.add_string buf
    "             output reg out_valid, output reg [7:0] out_data);\n";
  for i = 1 to stages do
    Buffer.add_string buf (Printf.sprintf "  reg [7:0] d%d;\n  reg v%d_valid;\n" i i)
  done;
  Buffer.add_string buf "  always @(posedge clk) begin\n";
  Buffer.add_string buf "    d1 <= in_data;\n    v1_valid <= in_valid;\n";
  for i = 2 to stages do
    let broken = sabotage = Some (i - 1) in
    Buffer.add_string buf (Printf.sprintf "    d%d <= d%d;\n" i (i - 1));
    Buffer.add_string buf
      (Printf.sprintf "    v%d_valid <= %s;\n" i
         (if broken then "1'b0" else Printf.sprintf "v%d_valid" (i - 1)))
  done;
  Buffer.add_string buf
    (Printf.sprintf "    out_data <= d%d;\n    out_valid <= v%d_valid;\n" stages
       stages);
  Buffer.add_string buf "  end\nendmodule\n";
  Buffer.contents buf

let pipeline_stimulus cycle =
  [
    ("in_valid", b ~width:1 (if cycle < 10 then 1 else 0));
    ("in_data", b ~width:8 (0x30 + cycle));
  ]

let prop_stat_monitor_localizes_stage =
  QCheck2.Test.make ~count:20 ~name:"statistics localize the sabotaged stage"
    QCheck2.Gen.(pair (int_range 3 6) (int_range 1 5))
    (fun (stages, k) ->
      let sabotage = 1 + (k mod (stages - 1)) in
      let src = pipeline_src ~stages ~sabotage:(Some sabotage) in
      let m = Parser.parse_module src in
      let events = Stat_monitor.valid_signal_events m in
      let plan = Stat_monitor.plan m events in
      let instrumented = Stat_monitor.instrument plan m in
      let sim = Testbench.of_design ~top:"pipe" { Ast.modules = [ instrumented ] } in
      let _ = Testbench.run ~max_cycles:30 sim pipeline_stimulus in
      let counts = Stat_monitor.counts plan sim in
      let stage_names =
        "in_valid" :: List.init stages (fun i -> Printf.sprintf "v%d_valid" (i + 1))
        @ [ "out_valid" ]
      in
      match Stat_monitor.localize_stage counts ~stages:stage_names with
      | Some a ->
          (* the boundary is between v<sabotage>_valid and the next one *)
          a.Stat_monitor.upstream = Printf.sprintf "v%d_valid" sabotage
      | None -> false)

let prop_pipeline_clean_no_anomaly =
  QCheck2.Test.make ~count:10 ~name:"clean pipelines have no stage anomaly"
    QCheck2.Gen.(int_range 3 6)
    (fun stages ->
      let src = pipeline_src ~stages ~sabotage:None in
      let m = Parser.parse_module src in
      let events = Stat_monitor.valid_signal_events m in
      let plan = Stat_monitor.plan m events in
      let instrumented = Stat_monitor.instrument plan m in
      let sim = Testbench.of_design ~top:"pipe" { Ast.modules = [ instrumented ] } in
      let _ = Testbench.run ~max_cycles:40 sim pipeline_stimulus in
      let counts = Stat_monitor.counts plan sim in
      let stage_names =
        List.init stages (fun i -> Printf.sprintf "v%d_valid" (i + 1))
      in
      (* interior stages see identical counts once drained *)
      Stat_monitor.localize_stage counts ~stages:stage_names = None)

let suite =
  suite
  @ [
      QCheck_alcotest.to_alcotest prop_stat_monitor_localizes_stage;
      QCheck_alcotest.to_alcotest prop_pipeline_clean_no_anomaly;
    ]

let test_dep_monitor_slice_precise () =
  let m =
    Parser.parse_module
      {|
module top (input clk, input [7:0] a, input [7:0] bb, output reg [7:0] q);
  reg [15:0] packed_word;
  always @(posedge clk) begin
    packed_word[7:0] <= a;
    packed_word[15:8] <= bb;
    q <= packed_word[7:0];
  end
endmodule
|}
  in
  let coarse = Dep_monitor.analyze ~target:"q" ~cycles:4 m in
  let fine = Dep_monitor.analyze ~slice_precise:true ~target:"q" ~cycles:4 m in
  check_bool "coarse includes bb" true (List.mem "bb" coarse.Dep_monitor.chain);
  check_bool "fine excludes bb" false (List.mem "bb" fine.Dep_monitor.chain);
  check_bool "fine keeps a" true (List.mem "a" fine.Dep_monitor.chain)

let suite =
  suite
  @ [
      Alcotest.test_case "dep monitor slice precise" `Quick
        test_dep_monitor_slice_precise;
    ]

(* --- SignalCat on negedge designs ----------------------------------------- *)

let test_signalcat_negedge () =
  (* a design whose tracing lives in a negedge block: the recorder
     clocks on the same edge and the unified logs still agree *)
  let design =
    Parser.parse_design
      {|
module top (input clk, input en, output reg [7:0] n);
  always @(posedge clk) if (en) n <= n + 8'd1;
  always @(negedge clk) begin
    if (n[2:0] == 3'd7) $display("low bits saturated: %d", n);
  end
endmodule
|}
  in
  let stim cycle = [ ("en", b ~width:1 (if cycle mod 7 = 6 then 0 else 1)) ] in
  let log mode =
    Signalcat.run_and_log ~buffer_depth:256 ~max_cycles:40 ~mode ~top:"top"
      design stim
  in
  let sim_log = log Signalcat.Simulation in
  check_bool "negedge log nonempty" true (sim_log <> []);
  Alcotest.(check (list (pair int string)))
    "negedge unified logs" sim_log (log Signalcat.On_fpga)

let test_signalcat_rejects_mixed_edges () =
  let m =
    Parser.parse_module
      {|
module top (input clk, output reg [7:0] n);
  always @(posedge clk) begin
    n <= n + 8'd1;
    if (n == 8'd3) $display("pos");
  end
  always @(negedge clk) begin
    if (n == 8'd5) $display("neg");
  end
endmodule
|}
  in
  check_bool "mixed edges rejected" true
    (match Signalcat.analyze m with
    | exception Instrument.Instrument_error _ -> true
    | _ -> false)

let suite =
  suite
  @ [
      Alcotest.test_case "signalcat negedge" `Quick test_signalcat_negedge;
      Alcotest.test_case "signalcat rejects mixed edges" `Quick
        test_signalcat_rejects_mixed_edges;
    ]

(* --- instrumentation name collisions --------------------------------------- *)

let test_instrument_name_collision () =
  (* a design that already uses a shadow name is rejected instead of
     being silently corrupted *)
  let m =
    Parser.parse_module
      {|
module top (input clk, output reg [7:0] _sc_cycle);
  always @(posedge clk) begin
    _sc_cycle <= _sc_cycle + 8'd1;
    if (_sc_cycle == 8'd3) $display("hit");
  end
endmodule
|}
  in
  let plan = Signalcat.analyze m in
  check_bool "collision rejected" true
    (match Signalcat.instrument plan m with
    | exception Instrument.Instrument_error _ -> true
    | _ -> false)

let suite =
  suite
  @ [
      Alcotest.test_case "instrument name collision" `Quick
        test_instrument_name_collision;
    ]

(* --- LossCheck: simultaneous same-word read+write is not a loss ----------- *)

let test_losscheck_simultaneous_rw () =
  (* a one-slot memory mailbox where each write lands in the same cycle
     the old value is read out: the old data IS consumed, so no alarm *)
  let design =
    Parser.parse_design
      {|
module top (input clk, input in_valid, input [7:0] in_data,
            output reg [7:0] out);
  reg [7:0] box [0:2];
  always @(posedge clk) begin
    if (in_valid) begin
      out <= box[0];
      box[0] <= in_data;
    end
  end
endmodule
|}
  in
  let spec =
    { Losscheck.source = "in_data"; valid = Ast.Ident "in_valid"; sink = "out" }
  in
  let stim cycle =
    [
      ("in_valid", b ~width:1 (if cycle >= 1 && cycle <= 6 then 1 else 0));
      ("in_data", b ~width:8 (0x50 + cycle));
    ]
  in
  let r = Losscheck.localize ~max_cycles:12 ~top:"top" ~spec ~stimulus:stim design in
  Alcotest.(check (list string))
    "swap-through mailbox never alarms" [] r.Losscheck.reported;
  (* but dropping the read turns every refill into a loss *)
  let lossy =
    Parser.parse_design
      {|
module top (input clk, input in_valid, input [7:0] in_data,
            output reg [7:0] out);
  reg [7:0] box [0:2];
  always @(posedge clk) begin
    if (in_valid) box[0] <= in_data;
    out <= out;
  end
endmodule
|}
  in
  let r2 = Losscheck.localize ~max_cycles:12 ~top:"top" ~spec ~stimulus:stim lossy in
  (* box never reaches the sink, so it is off the propagation sequence;
     the analysis reports nothing rather than a false alarm *)
  Alcotest.(check (list string)) "off-path memory not checked" [] r2.Losscheck.reported

let suite =
  suite
  @ [
      Alcotest.test_case "losscheck simultaneous read+write" `Quick
        test_losscheck_simultaneous_rw;
    ]
