(* Tests for the analytic resource/frequency model (the Quartus/Vivado
   substitute used by Figures 2 and 3). *)

open Fpga_hdl
open Fpga_resources

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let parse = Parser.parse_module

let test_register_counting () =
  let m =
    parse
      {|
module m (input clk, output [7:0] o);
  reg [7:0] a;
  reg [15:0] c;
  wire [7:0] w;
  assign w = a;
  assign o = w;
  always @(posedge clk) begin
    a <= a + 8'd1;
    c <= c + 16'd1;
  end
endmodule
|}
  in
  let u = Model.of_module m in
  check_int "registers = sum of reg widths" 24 u.Model.registers;
  check_int "no memories, no bram" 0 u.Model.bram_bits;
  check_bool "adders cost logic" true (u.Model.logic > 0)

let test_bram_counting () =
  let m =
    parse
      {|
module m (input clk, input [7:0] d, input [4:0] i, output [7:0] o);
  reg [7:0] mem [0:31];
  assign o = mem[i];
  always @(posedge clk) mem[i] <= d;
endmodule
|}
  in
  let u = Model.of_module m in
  check_int "bram bits = width x depth" 256 u.Model.bram_bits

let test_ip_usage () =
  let m =
    parse
      {|
module m (input clk, input [7:0] d, input p, input r, output [7:0] q);
  scfifo #(.lpm_width(8), .lpm_numwords(64)) u0 (
    .clock(clk), .data(d), .wrreq(p), .rdreq(r), .q(q));
endmodule
|}
  in
  let u = Model.of_module m in
  check_int "fifo storage counts as bram" 512 u.Model.bram_bits

let test_buffer_scaling_is_linear () =
  (* the key trend of Figure 2: recording BRAM grows linearly with the
     buffer depth while registers and logic stay flat *)
  let instrumented depth =
    let m =
      parse
        {|
module m (input clk, input [7:0] v, output reg [7:0] o);
  always @(posedge clk) begin
    o <= v;
    if (v == 8'd7) $display("seven: %d", v);
  end
endmodule
|}
    in
    let plan = Fpga_debug.Signalcat.analyze ~buffer_depth:depth m in
    Model.of_module (Fpga_debug.Signalcat.instrument plan m)
  in
  let u1 = instrumented 1024 in
  let u2 = instrumented 2048 in
  let u4 = instrumented 4096 in
  check_int "bram growth is linear in depth"
    (2 * (u2.Model.bram_bits - u1.Model.bram_bits))
    (u4.Model.bram_bits - u2.Model.bram_bits);
  check_bool "bram strictly grows" true
    (u1.Model.bram_bits < u2.Model.bram_bits && u2.Model.bram_bits < u4.Model.bram_bits);
  check_bool "registers stable across depths" true
    (abs (u2.Model.registers - u1.Model.registers) <= 1
    && abs (u4.Model.registers - u2.Model.registers) <= 1);
  (* the pointer width grows with log2(depth): logic is near-constant *)
  check_bool "logic nearly stable across depths" true
    (abs (u4.Model.logic - u1.Model.logic) <= 8)

let test_overhead () =
  let m =
    parse
      {|
module m (input clk, input [7:0] v, output reg [7:0] o);
  always @(posedge clk) o <= v;
endmodule
|}
  in
  let plan = Fpga_debug.Signalcat.analyze ~buffer_depth:1024 m in
  let instrumented = Fpga_debug.Signalcat.instrument plan m in
  let d = Model.overhead ~baseline:m ~instrumented in
  (* no displays: no recording logic, zero overhead *)
  check_int "zero overhead without displays" 0 d.Model.bram_bits

let test_frequency_model () =
  let shallow =
    parse
      {|
module m (input clk, input [7:0] a, input [7:0] c, output reg [7:0] o);
  always @(posedge clk) o <= a + c;
endmodule
|}
  in
  let deep =
    parse
      {|
module m (input clk, input [7:0] a, input [7:0] c, output reg [7:0] o);
  wire [7:0] w;
  assign w = ((a * c) + (a * 8'd3)) * ((c * a) + (a + c));
  always @(posedge clk) o <= (w * w) + ((w + a) * (w + c)) + (w * a) + (w * c);
endmodule
|}
  in
  let t_shallow = Model.timing Platforms.harp shallow ~target_mhz:400 in
  let t_deep = Model.timing Platforms.harp deep ~target_mhz:400 in
  check_bool "shallow meets 400" true t_shallow.Model.meets_target;
  check_bool "deep misses 400" false t_deep.Model.meets_target;
  check_bool "deep achieves a lower grid frequency" true
    (t_deep.Model.achieved_mhz < 400);
  check_bool "levels ordered" true
    (Model.critical_levels deep > Model.critical_levels shallow)

let test_normalization () =
  let u = { Model.bram_bits = 555_622; registers = 17_088; logic = 4_272 } in
  let norm = Model.normalize Platforms.harp u in
  let get k = List.assoc k norm in
  check_bool "bram ~1%" true (abs_float (get "bram" -. 1.0) < 0.01);
  check_bool "registers ~1%" true (abs_float (get "registers" -. 1.0) < 0.01);
  check_bool "logic ~1%" true (abs_float (get "logic" -. 1.0) < 0.01)

let test_platforms () =
  check_bool "harp bigger than kc705" true
    (Platforms.harp.Platforms.bram_bits > Platforms.kc705.Platforms.bram_bits);
  check_bool "generic maps to kc705" true
    (Platforms.of_kind Platforms.Generic == Platforms.kc705);
  check_bool "harp maps to harp" true
    (Platforms.of_kind Platforms.Harp == Platforms.harp)

let suite =
  [
    Alcotest.test_case "register counting" `Quick test_register_counting;
    Alcotest.test_case "bram counting" `Quick test_bram_counting;
    Alcotest.test_case "ip usage" `Quick test_ip_usage;
    Alcotest.test_case "buffer scaling linear" `Quick
      test_buffer_scaling_is_linear;
    Alcotest.test_case "overhead" `Quick test_overhead;
    Alcotest.test_case "frequency model" `Quick test_frequency_model;
    Alcotest.test_case "normalization" `Quick test_normalization;
    Alcotest.test_case "platforms" `Quick test_platforms;
  ]
